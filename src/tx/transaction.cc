#include "tx/transaction.h"

#include <cstddef>
#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/serde.h"
#include "tx/fast_path.h"

namespace tell::tx {

namespace {
constexpr std::string_view kNextRidKey = "meta/next_rid";
constexpr int kMaxRollbackRetries = 1024;

std::string RidKey(uint64_t rid) { return EncodeOrderedU64(rid); }
}  // namespace

Result<uint64_t> Session::AllocateRid(const TableMeta* table) {
  auto& range = rid_ranges_[table->data_table];
  if (range.first > range.second || range.first == 0) {
    TELL_ASSIGN_OR_RETURN(
        int64_t end, client_.AtomicIncrement(table->data_table, kNextRidKey,
                                             options_.rid_range_size));
    range.second = static_cast<uint64_t>(end);
    range.first = range.second - options_.rid_range_size + 1;
  }
  return range.first++;
}

Transaction::Transaction(Session* session, const TxnOptions& options)
    : session_(session),
      client_(session->client()),
      tracer_(session->tracer()),
      options_(options) {}

Transaction::~Transaction() {
  if (state_ == TxnState::kRunning) {
    (void)Abort();
  }
  // Flush the per-phase virtual-time totals into the worker's histograms
  // (idempotent; a no-op if Begin was never reached).
  tracer_->EndTxn();
}

Status Transaction::CheckWritable(const RecordState& state) const {
  const schema::RecordVersion* newest = state.record.Newest();
  if (newest != nullptr && newest->version != tid_ &&
      !snapshot_.CanRead(newest->version)) {
    return Status::Aborted(
        "write-write conflict: record has a newer invisible version");
  }
  return Status::OK();
}

Status Transaction::Begin() {
  TELL_CHECK(state_ == TxnState::kPending);
  tracer_->BeginTxn();
  obs::PhaseScope span(tracer_, sim::TxnPhase::kBegin);
  FastPathCoordinator* fastpath = session_->fastpath();
  if (fastpath != nullptr && options_.home_partition >= 0) {
    // Fast phase: no commit-manager begin, no snapshot. The home lane's
    // fence is held exclusively until commit/abort — the lane is a serial
    // execution queue, so every version in the partition is settled and
    // Newest() is the consistent read (see Visible()). The tid is leased
    // lazily on first write; read-only fast transactions never contact the
    // commit manager at all.
    fast_ = true;
    lane_ = fastpath->LaneFor(options_.home_partition);
    fastpath->AcquireFastFences(lane_, client_->metrics());
    fast_begin_vns_ = session_->clock()->now_ns();
    state_ = TxnState::kRunning;
    return Status::OK();
  }
  if (fastpath != nullptr) {
    // MVCC begin with the fast path live: earlier fast commits must be
    // completed at the manager BEFORE this snapshot is fetched, or the
    // snapshot could miss a fast write this very worker already made
    // (read-your-writes across phases, and the on/off determinism
    // guarantee).
    fastpath->FlushPending(session_->worker_id(), client_);
  }
  // Each processing node talks to one dedicated commit manager (§4.2);
  // fail-over, fault injection, retries and the delta-sync/batching wire
  // accounting all live in the session's CommitManagerClient. The response
  // carries the snapshot as a delta against the session's cached descriptor
  // (or the full descriptor on first contact / resync).
  TELL_ASSIGN_OR_RETURN(commitmgr::TxnBegin begin,
                        session_->commitmgr_client()->Begin(session_->pn_id()));
  commit_manager_ = session_->commitmgr_client()->last_manager();
  tid_ = begin.tid;
  snapshot_ = std::move(begin.snapshot);
  lav_ = begin.lav;
  session_->record_buffer()->OnTransactionStart(snapshot_);
  state_ = TxnState::kRunning;
  return Status::OK();
}

Result<Transaction::RecordState*> Transaction::EnsureFetched(
    TableHandle* table, uint64_t rid) {
  RecordKey key{table->meta->data_table, rid};
  auto it = buffer_.find(key);
  if (it != buffer_.end()) return &it->second;

  obs::PhaseScope span(tracer_, sim::TxnPhase::kRead);
  RecordState state;
  state.table = table;
  if (fast_) {
    // Fast reads bypass the PN-level buffer: the buffer layers label
    // records with snapshots, which a fast transaction does not have. One
    // direct fetch from the owning storage node (TellDb only enables the
    // fast path under the passthrough strategy, so there is no shared
    // state to go stale).
    auto cell = client_->Get(table->meta->data_table, RidKey(rid));
    client_->metrics()->buffer_misses += 1;
    if (cell.ok()) {
      TELL_ASSIGN_OR_RETURN(state.record,
                            schema::VersionedRecord::Deserialize(cell->value));
      state.stamp = cell->stamp;
      state.exists = true;
    } else if (!cell.status().IsNotFound()) {
      return cell.status();
    }
    auto [inserted, _] = buffer_.emplace(key, std::move(state));
    return &inserted->second;
  }
  auto fetched = session_->record_buffer()->Read(
      client_, table->meta->data_table, rid, snapshot_);
  if (fetched.ok()) {
    state.record = std::move(fetched->record);
    state.stamp = fetched->stamp;
    state.exists = true;
  } else if (fetched.status().IsNotFound()) {
    state.exists = false;
  } else {
    return fetched.status();
  }
  auto [inserted, _] = buffer_.emplace(key, std::move(state));
  return &inserted->second;
}

Status Transaction::CheckFastTuple(TableHandle* table,
                                   const schema::Tuple& tuple,
                                   bool for_write) {
  const int32_t column = table->meta->partition_column;
  if (column < 0) {
    // Unpartitioned reference table: reads are safe under the shared
    // reference fence; writes would need it exclusive — MVCC's job.
    if (!for_write) return Status::OK();
    fallback_ = true;
    return Status::CrossPartition("write to unpartitioned table '" +
                                  table->meta->name + "'");
  }
  const int64_t* partition = std::get_if<int64_t>(&tuple.at(column));
  if (partition == nullptr || *partition != options_.home_partition) {
    fallback_ = true;
    return Status::CrossPartition(
        "touch in partition " +
        (partition == nullptr ? std::string("<non-int>")
                              : std::to_string(*partition)) +
        " outside declared home " + std::to_string(options_.home_partition) +
        " ('" + table->meta->name + "')");
  }
  return Status::OK();
}

Status Transaction::EnsureFastTid() {
  if (tid_ != 0) return Status::OK();
  auto leased = session_->fastpath()->LeaseTid(lane_, session_->worker_id(),
                                               client_);
  if (!leased.ok()) return leased.status();
  tid_ = *leased;
  return Status::OK();
}

void Transaction::RecordPartition(RecordState* state, TableHandle* table,
                                  const schema::Tuple& tuple) {
  const int32_t column = table->meta->partition_column;
  if (column < 0) {
    state->unpartitioned = true;
    return;
  }
  if (const int64_t* partition = std::get_if<int64_t>(&tuple.at(column))) {
    if (std::find(state->partitions.begin(), state->partitions.end(),
                  *partition) == state->partitions.end()) {
      state->partitions.push_back(*partition);
    }
  } else {
    // Non-integer partition value: no lane to map it to — fall back to the
    // exclusive reference fence.
    state->unpartitioned = true;
  }
}

Result<std::optional<schema::Tuple>> Transaction::Read(TableHandle* table,
                                                       uint64_t rid) {
  TELL_CHECK(state_ == TxnState::kRunning);
  obs::PhaseScope span(tracer_, sim::TxnPhase::kRead);
  TELL_ASSIGN_OR_RETURN(RecordState * state, EnsureFetched(table, rid));
  const schema::RecordVersion* visible = Visible(*state);
  if (visible == nullptr || visible->tombstone) return std::optional<schema::Tuple>{};
  client_->ChargeCpu(client_->options().cpu.per_record_ns);
  TELL_ASSIGN_OR_RETURN(
      schema::Tuple tuple,
      schema::Tuple::Deserialize(table->meta->schema, visible->payload));
  if (fast_) {
    TELL_RETURN_NOT_OK(CheckFastTuple(table, tuple, /*for_write=*/false));
  }
  return std::optional<schema::Tuple>(std::move(tuple));
}

Status Transaction::PrefetchMissing(TableHandle* table,
                                    const std::vector<uint64_t>& rids) {
  store::TableId data_table = table->meta->data_table;
  std::vector<uint64_t> missing;
  for (uint64_t rid : rids) {
    if (buffer_.find({data_table, rid}) == buffer_.end()) {
      missing.push_back(rid);
    }
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  if (missing.empty() || !session_->record_buffer()->PrefersBatchFetch()) {
    return Status::OK();
  }
  std::vector<store::GetOp> ops;
  ops.reserve(missing.size());
  for (uint64_t rid : missing) ops.push_back({data_table, RidKey(rid)});
  std::vector<Result<store::VersionedCell>> cells = client_->BatchGet(ops);
  for (size_t i = 0; i < missing.size(); ++i) {
    client_->metrics()->buffer_misses += 1;
    RecordState state;
    state.table = table;
    if (cells[i].ok()) {
      TELL_ASSIGN_OR_RETURN(
          state.record, schema::VersionedRecord::Deserialize(cells[i]->value));
      state.stamp = cells[i]->stamp;
      state.exists = true;
    } else if (!cells[i].status().IsNotFound()) {
      return cells[i].status();
    }
    buffer_.emplace(RecordKey{data_table, missing[i]}, std::move(state));
  }
  return Status::OK();
}

Result<std::vector<std::optional<schema::Tuple>>> Transaction::BatchRead(
    TableHandle* table, const std::vector<uint64_t>& rids) {
  TELL_CHECK(state_ == TxnState::kRunning);
  obs::PhaseScope span(tracer_, sim::TxnPhase::kRead);
  // Fetch everything not yet buffered, in one batched request when the
  // buffering strategy allows it.
  TELL_RETURN_NOT_OK(PrefetchMissing(table, rids));
  std::vector<std::optional<schema::Tuple>> out;
  out.reserve(rids.size());
  for (uint64_t rid : rids) {
    TELL_ASSIGN_OR_RETURN(std::optional<schema::Tuple> tuple,
                          Read(table, rid));
    out.push_back(std::move(tuple));
  }
  return out;
}

Status Transaction::QueueIndexInserts(TableHandle* table, uint64_t rid,
                                      const schema::Tuple& tuple,
                                      const schema::Tuple* old_tuple) {
  auto queue_for = [&](index::BTree* tree, const schema::IndexDef& def)
      -> Status {
    TELL_ASSIGN_OR_RETURN(std::string new_key,
                          schema::EncodeIndexKey(tuple, def.key_columns));
    if (old_tuple != nullptr) {
      TELL_ASSIGN_OR_RETURN(
          std::string old_key,
          schema::EncodeIndexKey(*old_tuple, def.key_columns));
      // §5.3.2: an index entry is only inserted when the indexed key
      // actually changes; obsolete entries are collected later.
      if (old_key == new_key) return Status::OK();
    }
    index_ops_.push_back({tree, new_key, rid, def.unique});
    pending_index_[{tree->table(), new_key}].push_back(rid);
    return Status::OK();
  };
  TELL_RETURN_NOT_OK(queue_for(&table->primary, table->meta->primary.def));
  for (size_t i = 0; i < table->secondaries.size(); ++i) {
    TELL_RETURN_NOT_OK(
        queue_for(&table->secondaries[i], table->meta->secondaries[i].def));
  }
  return Status::OK();
}

Result<uint64_t> Transaction::Insert(TableHandle* table,
                                     const schema::Tuple& tuple,
                                     bool check_unique) {
  TELL_CHECK(state_ == TxnState::kRunning);
  obs::PhaseScope span(tracer_, sim::TxnPhase::kWrite);
  for (uint32_t column : table->meta->primary.def.key_columns) {
    if (schema::ValueIsNull(tuple.at(column))) {
      return Status::InvalidArgument("primary key column '" +
                                     table->meta->schema.column(column).name +
                                     "' must not be NULL");
    }
  }
  if (fast_) {
    // Check the partition BEFORE any side effect (rid allocation, tid
    // lease): a cross-partition insert must fall back with nothing leaked.
    TELL_RETURN_NOT_OK(CheckFastTuple(table, tuple, /*for_write=*/true));
    TELL_RETURN_NOT_OK(EnsureFastTid());
  }
  if (check_unique) {
    std::vector<schema::Value> key;
    for (uint32_t column : table->meta->primary.def.key_columns) {
      key.push_back(tuple.at(column));
    }
    TELL_ASSIGN_OR_RETURN(std::optional<uint64_t> existing,
                          LookupPrimary(table, key));
    if (existing.has_value()) {
      return Status::AlreadyExists("primary key already exists in '" +
                                   table->meta->name + "'");
    }
  }
  TELL_ASSIGN_OR_RETURN(uint64_t rid, session_->AllocateRid(table->meta));
  RecordState state;
  state.table = table;
  state.is_new = true;
  state.dirty = true;
  state.exists = false;
  RecordPartition(&state, table, tuple);
  state.record.PutVersion(tid_, tuple.Serialize(table->meta->schema));
  buffer_[{table->meta->data_table, rid}] = std::move(state);
  TELL_RETURN_NOT_OK(QueueIndexInserts(table, rid, tuple, nullptr));
  return rid;
}

Status Transaction::Update(TableHandle* table, uint64_t rid,
                           const schema::Tuple& tuple) {
  TELL_CHECK(state_ == TxnState::kRunning);
  obs::PhaseScope span(tracer_, sim::TxnPhase::kWrite);
  TELL_ASSIGN_OR_RETURN(RecordState * state, EnsureFetched(table, rid));
  // Fast mode is trivially write-safe (the lane is serial) — and has no
  // snapshot for CheckWritable to compare against.
  if (!fast_) TELL_RETURN_NOT_OK(CheckWritable(*state));
  const schema::RecordVersion* visible = Visible(*state);
  if (visible == nullptr || visible->tombstone) {
    return Status::NotFound("record not visible in this snapshot");
  }
  TELL_ASSIGN_OR_RETURN(
      schema::Tuple old_tuple,
      schema::Tuple::Deserialize(table->meta->schema, visible->payload));
  if (fast_) {
    // Both the record's current home and the new image must be in the
    // declared partition, checked before the write is buffered.
    TELL_RETURN_NOT_OK(CheckFastTuple(table, old_tuple, /*for_write=*/true));
    TELL_RETURN_NOT_OK(CheckFastTuple(table, tuple, /*for_write=*/true));
    TELL_RETURN_NOT_OK(EnsureFastTid());
  }
  // Fence the union of old and new partitions: an update that changes the
  // partition column moves the row from lane(old) to lane(new), and a fast
  // transaction homed on EITHER partition may hold the record buffered — the
  // MVCC commit must hold both lanes shared or a concurrent fast commit
  // could clobber its version.
  RecordPartition(state, table, old_tuple);
  RecordPartition(state, table, tuple);
  state->record.PutVersion(tid_, tuple.Serialize(table->meta->schema));
  state->dirty = true;
  return QueueIndexInserts(table, rid, tuple, &old_tuple);
}

Status Transaction::Delete(TableHandle* table, uint64_t rid) {
  TELL_CHECK(state_ == TxnState::kRunning);
  obs::PhaseScope span(tracer_, sim::TxnPhase::kWrite);
  TELL_ASSIGN_OR_RETURN(RecordState * state, EnsureFetched(table, rid));
  if (!fast_) TELL_RETURN_NOT_OK(CheckWritable(*state));
  const schema::RecordVersion* visible = Visible(*state);
  if (visible == nullptr || visible->tombstone) {
    return Status::NotFound("record not visible in this snapshot");
  }
  TELL_ASSIGN_OR_RETURN(
      schema::Tuple old_tuple,
      schema::Tuple::Deserialize(table->meta->schema, visible->payload));
  if (fast_) {
    TELL_RETURN_NOT_OK(CheckFastTuple(table, old_tuple, /*for_write=*/true));
    TELL_RETURN_NOT_OK(EnsureFastTid());
  }
  RecordPartition(state, table, old_tuple);
  state->record.PutVersion(tid_, "", /*tombstone=*/true);
  state->dirty = true;
  // Index entries stay; version-unaware indexes drop them via GC once no
  // version carries the key anymore (§5.3.2, §5.4).
  return Status::OK();
}

Result<std::optional<schema::Tuple>> Transaction::ValidateIndexHit(
    TableHandle* table, index::BTree* tree, const std::string& key,
    uint64_t rid) {
  const schema::IndexDef* def = nullptr;
  if (tree == &table->primary) {
    def = &table->meta->primary.def;
  } else {
    for (size_t i = 0; i < table->secondaries.size(); ++i) {
      if (tree == &table->secondaries[i]) {
        def = &table->meta->secondaries[i].def;
        break;
      }
    }
  }
  TELL_CHECK(def != nullptr);

  RecordKey record_key{table->meta->data_table, rid};
  bool own_pending = false;
  auto pending_it = pending_index_.find({tree->table(), key});
  if (pending_it != pending_index_.end()) {
    own_pending = std::find(pending_it->second.begin(),
                            pending_it->second.end(),
                            rid) != pending_it->second.end();
  }

  TELL_ASSIGN_OR_RETURN(RecordState * state, EnsureFetched(table, rid));
  if (!state->exists && !state->dirty) {
    // Record gone entirely: the entry is orphaned — index GC (§5.4). Fast
    // transactions leave GC to the MVCC phase: no LL/SC index writes on
    // the fast lane.
    if (!own_pending && !fast_) {
      (void)tree->Remove(client_, key, rid);
    }
    return std::optional<schema::Tuple>{};
  }
  // Does ANY version still carry this key? If not, the entry is obsolete
  // (V_a \ G = ∅ approximation: no live version contains a).
  bool key_in_some_version = false;
  std::optional<schema::Tuple> match;
  const schema::RecordVersion* visible = Visible(*state);
  for (const schema::RecordVersion& version : state->record.versions()) {
    if (version.tombstone) continue;
    auto tuple = schema::Tuple::Deserialize(table->meta->schema,
                                            version.payload);
    if (!tuple.ok()) continue;
    auto version_key = schema::EncodeIndexKey(*tuple, def->key_columns);
    if (version_key.ok() && *version_key == key) {
      key_in_some_version = true;
      if (visible != nullptr && visible->version == version.version &&
          !visible->tombstone) {
        match = std::move(*tuple);
      }
    }
  }
  if (!key_in_some_version && !own_pending && !fast_) {
    (void)tree->Remove(client_, key, rid);
  }
  if (fast_ && match.has_value()) {
    // A secondary-index hit may land anywhere — e.g. a customer looked up
    // by name whose record lives in another warehouse. Validate the hit's
    // partition before the caller can act on it.
    TELL_RETURN_NOT_OK(CheckFastTuple(table, *match, /*for_write=*/false));
  }
  return match;
}

Result<std::vector<uint64_t>> Transaction::LookupIndex(
    TableHandle* table, int index, const std::vector<schema::Value>& key) {
  TELL_CHECK(state_ == TxnState::kRunning);
  // Index-lookup span; the nested record fetches of ValidateIndexHit
  // re-attribute their time to the read phase (exclusive attribution).
  obs::PhaseScope span(tracer_, sim::TxnPhase::kIndexLookup);
  index::BTree* tree =
      index < 0 ? &table->primary
                : &table->secondaries[static_cast<size_t>(index)];
  TELL_ASSIGN_OR_RETURN(std::string encoded,
                        schema::EncodeIndexKeyValues(key));
  TELL_ASSIGN_OR_RETURN(std::vector<uint64_t> rids,
                        tree->Lookup(client_, encoded));
  auto pending_it = pending_index_.find({tree->table(), encoded});
  if (pending_it != pending_index_.end()) {
    for (uint64_t rid : pending_it->second) rids.push_back(rid);
  }
  std::sort(rids.begin(), rids.end());
  rids.erase(std::unique(rids.begin(), rids.end()), rids.end());
  std::vector<uint64_t> visible;
  for (uint64_t rid : rids) {
    TELL_ASSIGN_OR_RETURN(std::optional<schema::Tuple> tuple,
                          ValidateIndexHit(table, tree, encoded, rid));
    if (tuple.has_value()) visible.push_back(rid);
  }
  return visible;
}

Result<std::optional<uint64_t>> Transaction::LookupPrimary(
    TableHandle* table, const std::vector<schema::Value>& key) {
  TELL_ASSIGN_OR_RETURN(std::vector<uint64_t> rids,
                        LookupIndex(table, -1, key));
  if (rids.empty()) return std::optional<uint64_t>{};
  if (rids.size() > 1) {
    return Status::InternalError("unique index returned multiple rids");
  }
  return std::optional<uint64_t>(rids.front());
}

Result<std::vector<std::optional<uint64_t>>> Transaction::BatchLookupPrimary(
    TableHandle* table, const std::vector<std::vector<schema::Value>>& keys) {
  TELL_CHECK(state_ == TxnState::kRunning);
  obs::PhaseScope span(tracer_, sim::TxnPhase::kIndexLookup);
  index::BTree* tree = &table->primary;
  std::vector<std::string> encoded;
  encoded.reserve(keys.size());
  for (const auto& key : keys) {
    TELL_ASSIGN_OR_RETURN(std::string one, schema::EncodeIndexKeyValues(key));
    encoded.push_back(std::move(one));
  }
  TELL_ASSIGN_OR_RETURN(std::vector<std::vector<uint64_t>> rid_lists,
                        tree->BatchLookup(client_, encoded));
  TELL_CHECK(rid_lists.size() == encoded.size());
  // Merge this transaction's pending inserts and dedup, like LookupIndex.
  for (size_t i = 0; i < encoded.size(); ++i) {
    auto pending_it = pending_index_.find({tree->table(), encoded[i]});
    if (pending_it != pending_index_.end()) {
      for (uint64_t rid : pending_it->second) rid_lists[i].push_back(rid);
    }
    std::sort(rid_lists[i].begin(), rid_lists[i].end());
    rid_lists[i].erase(std::unique(rid_lists[i].begin(), rid_lists[i].end()),
                       rid_lists[i].end());
  }
  // Prefetch every candidate record up front so the per-key validation below
  // is served from the transaction buffer (record fetches attribute to the
  // read phase, like EnsureFetched would).
  {
    obs::PhaseScope read_span(tracer_, sim::TxnPhase::kRead);
    std::vector<uint64_t> candidates;
    for (const auto& rids : rid_lists) {
      candidates.insert(candidates.end(), rids.begin(), rids.end());
    }
    TELL_RETURN_NOT_OK(PrefetchMissing(table, candidates));
  }
  std::vector<std::optional<uint64_t>> out;
  out.reserve(keys.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::optional<uint64_t> found;
    for (uint64_t rid : rid_lists[i]) {
      TELL_ASSIGN_OR_RETURN(std::optional<schema::Tuple> tuple,
                            ValidateIndexHit(table, tree, encoded[i], rid));
      if (!tuple.has_value()) continue;
      if (found.has_value()) {
        return Status::InternalError("unique index returned multiple rids");
      }
      found = rid;
    }
    out.push_back(found);
  }
  return out;
}

Result<std::optional<schema::Tuple>> Transaction::ReadByKey(
    TableHandle* table, const std::vector<schema::Value>& key) {
  TELL_ASSIGN_OR_RETURN(std::optional<uint64_t> rid,
                        LookupPrimary(table, key));
  if (!rid.has_value()) return std::optional<schema::Tuple>{};
  return Read(table, *rid);
}

Result<std::optional<std::pair<uint64_t, schema::Tuple>>>
Transaction::ReadByKeyWithRid(TableHandle* table,
                              const std::vector<schema::Value>& key) {
  TELL_ASSIGN_OR_RETURN(std::optional<uint64_t> rid,
                        LookupPrimary(table, key));
  if (!rid.has_value()) {
    return std::optional<std::pair<uint64_t, schema::Tuple>>{};
  }
  TELL_ASSIGN_OR_RETURN(std::optional<schema::Tuple> tuple,
                        Read(table, *rid));
  if (!tuple.has_value()) {
    return std::optional<std::pair<uint64_t, schema::Tuple>>{};
  }
  return std::optional<std::pair<uint64_t, schema::Tuple>>(
      std::make_pair(*rid, std::move(*tuple)));
}

Result<std::vector<std::pair<uint64_t, schema::Tuple>>> Transaction::ScanIndex(
    TableHandle* table, int index, const std::vector<schema::Value>& start,
    const std::vector<schema::Value>& end, size_t limit) {
  std::string lo, hi;
  if (!start.empty()) {
    TELL_ASSIGN_OR_RETURN(lo, schema::EncodeIndexKeyValues(start));
  }
  if (!end.empty()) {
    TELL_ASSIGN_OR_RETURN(hi, schema::EncodeIndexKeyValues(end));
  }
  return ScanIndexEncoded(table, index, lo, hi, limit);
}

Result<std::vector<std::pair<uint64_t, schema::Tuple>>>
Transaction::ScanIndexEncoded(TableHandle* table, int index,
                              const std::string& lo, const std::string& hi,
                              size_t limit) {
  TELL_CHECK(state_ == TxnState::kRunning);
  obs::PhaseScope span(tracer_, sim::TxnPhase::kIndexLookup);
  index::BTree* tree =
      index < 0 ? &table->primary
                : &table->secondaries[static_cast<size_t>(index)];

  // This transaction's pending inserts in [lo, hi), merged chunk-wise below
  // so validation stays in global key order across continuation chunks.
  std::vector<index::IndexEntry> pending;
  for (const auto& [key, rids] : pending_index_) {
    if (key.first != tree->table()) continue;
    if (key.second < lo) continue;
    if (!hi.empty() && key.second >= hi) continue;
    for (uint64_t rid : rids) pending.push_back({key.second, rid});
  }
  auto entry_less = [](const index::IndexEntry& a,
                       const index::IndexEntry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.rid < b.rid;
  };
  std::sort(pending.begin(), pending.end(), entry_less);
  size_t pending_pos = 0;

  // Over-fetch to compensate for entries that validate to nothing
  // (invisible versions, GC debt). If a chunk's live yield still falls
  // short of `limit`, the scan CONTINUES from the last key seen instead of
  // returning a truncated result; `processed` filters the entries the
  // inclusive continuation cursor re-reads (one key's entries can span a
  // chunk boundary).
  size_t fetch_limit = limit == 0 ? 0 : limit * 4 + 16;
  std::set<std::pair<std::string, uint64_t>> processed;
  std::vector<std::pair<uint64_t, schema::Tuple>> out;
  std::string cursor = lo;
  while (true) {
    TELL_ASSIGN_OR_RETURN(std::vector<index::IndexEntry> chunk,
                          tree->RangeScan(client_, cursor, hi, fetch_limit));
    const bool tree_exhausted = fetch_limit == 0 || chunk.size() < fetch_limit;
    const std::string horizon = chunk.empty() ? std::string() : chunk.back().key;
    while (pending_pos < pending.size() &&
           (tree_exhausted || pending[pending_pos].key <= horizon)) {
      chunk.push_back(pending[pending_pos]);
      ++pending_pos;
    }
    std::sort(chunk.begin(), chunk.end(), entry_less);
    std::vector<index::IndexEntry> fresh;
    fresh.reserve(chunk.size());
    for (const index::IndexEntry& entry : chunk) {
      if (processed.insert({entry.key, entry.rid}).second) {
        fresh.push_back(entry);
      }
    }
    // Prefetch every referenced record that is not yet buffered in one
    // batched request (§5.1 batching), so validation below is buffer-only.
    {
      std::vector<uint64_t> missing;
      for (const index::IndexEntry& entry : fresh) {
        if (buffer_.find({table->meta->data_table, entry.rid}) ==
            buffer_.end()) {
          missing.push_back(entry.rid);
        }
      }
      std::sort(missing.begin(), missing.end());
      missing.erase(std::unique(missing.begin(), missing.end()),
                    missing.end());
      if (!missing.empty() && session_->record_buffer()->PrefersBatchFetch()) {
        TELL_RETURN_NOT_OK(BatchRead(table, missing).status());
      }
    }
    for (const index::IndexEntry& entry : fresh) {
      TELL_ASSIGN_OR_RETURN(
          std::optional<schema::Tuple> tuple,
          ValidateIndexHit(table, tree, entry.key, entry.rid));
      if (tuple.has_value()) {
        out.emplace_back(entry.rid, std::move(*tuple));
        if (limit != 0 && out.size() >= limit) return out;
      }
    }
    if (tree_exhausted) break;
    cursor = horizon;
    if (fresh.empty()) {
      // A whole chunk of already-processed entries: one key has more
      // duplicates than fetch_limit. Widen the window to get past it.
      fetch_limit *= 2;
    }
  }
  return out;
}

Status Transaction::ValidateReadSet() {
  std::vector<store::GetOp> ops;
  std::vector<uint64_t> expected;
  for (const auto& [key, state] : buffer_) {
    if (state.dirty) continue;  // writes are validated by LL/SC itself
    if (!state.exists) continue;  // absent records: phantom-style validation
                                  // is out of scope (no gap locks)
    ops.push_back({key.first, RidKey(key.second)});
    expected.push_back(state.stamp);
  }
  if (ops.empty()) return Status::OK();
  std::vector<Result<store::VersionedCell>> cells = client_->BatchGet(ops);
  for (size_t i = 0; i < cells.size(); ++i) {
    if (!cells[i].ok() || cells[i]->stamp != expected[i]) {
      return Status::Aborted("serializable validation: read set changed");
    }
  }
  return Status::OK();
}

std::function<bool(std::string_view, std::string*)>
Transaction::VisibilityClosure() const {
  // Copies of the snapshot and tid: the closure outlives no transaction,
  // but it does run "on the storage node", conceptually shipped with the
  // request.
  SnapshotDescriptor snapshot = snapshot_;
  Tid tid = tid_;
  return [snapshot, tid](std::string_view value, std::string* payload) {
    auto record = schema::VersionedRecord::Deserialize(value);
    if (!record.ok()) return false;
    const schema::RecordVersion* visible =
        record->VisibleVersion(snapshot, tid);
    if (visible == nullptr || visible->tombstone) return false;
    payload->assign(visible->payload);
    return true;
  };
}

bool Transaction::HasDirtyWrites(const TableHandle* table) const {
  for (const auto& [key, state] : buffer_) {
    if (state.dirty && key.first == table->meta->data_table) return true;
  }
  return false;
}

Result<std::vector<std::pair<uint64_t, schema::Tuple>>>
Transaction::FilteredScan(
    TableHandle* table,
    const std::function<bool(const schema::Tuple&)>& predicate,
    size_t limit) {
  TELL_CHECK(state_ == TxnState::kRunning);
  obs::PhaseScope span(tracer_, sim::TxnPhase::kRead);
  if (fast_) {
    // A pushdown scan covers every partition of the table by design.
    fallback_ = true;
    return Status::CrossPartition("pushdown scans run on the MVCC path");
  }
  const schema::Schema& schema = table->meta->schema;
  // Dirty buffered rows overlay the server's result below; they could both
  // displace and add rows, so a server-side limit would truncate wrongly.
  const bool has_dirty = HasDirtyWrites(table);
  if (has_dirty) limit = 0;
  // The closure below executes on the storage nodes: visibility check plus
  // the pushed-down predicate. Matches ship only the visible version's
  // payload — not the stored multi-version cell — so non-matching records
  // never hit the wire and matching ones pay for live bytes only.
  auto visible_payload = VisibilityClosure();
  auto server_side = [&schema, &visible_payload, &predicate](
                         std::string_view key, std::string_view value,
                         std::string* out) {
    if (key.size() != sizeof(uint64_t)) return false;  // meta cells
    if (!visible_payload(value, out)) return false;
    auto tuple = schema::Tuple::Deserialize(schema, *out);
    if (!tuple.ok()) return false;
    return predicate(*tuple);
  };
  uint64_t scanned = 0;
  TELL_ASSIGN_OR_RETURN(
      std::vector<store::KeyCell> cells,
      client_->PushdownScan(table->meta->data_table, "", "", limit,
                            server_side, /*filter_descriptor_bytes=*/64,
                            &scanned));
  client_->metrics()->scan_rows_scanned += scanned;
  client_->metrics()->scan_rows_returned += cells.size();
  std::vector<std::pair<uint64_t, schema::Tuple>> out;
  out.reserve(cells.size());
  for (const store::KeyCell& cell : cells) {
    uint64_t rid = DecodeOrderedU64(cell.key);
    // Own dirty records are overlaid below from the private buffer.
    RecordKey record_key{table->meta->data_table, rid};
    auto buffered = buffer_.find(record_key);
    if (buffered != buffer_.end() && buffered->second.dirty) continue;
    // The shipped bytes are the visible payload already judged server-side:
    // one tuple decode, no re-deserialization of version history.
    TELL_ASSIGN_OR_RETURN(schema::Tuple tuple,
                          schema::Tuple::Deserialize(schema, cell.value));
    client_->ChargeCpu(client_->options().cpu.per_record_ns);
    out.emplace_back(rid, std::move(tuple));
  }
  // Merge this transaction's own pending writes that match.
  for (const auto& [key, state] : buffer_) {
    if (!state.dirty || key.first != table->meta->data_table) continue;
    const schema::RecordVersion* visible =
        state.record.VisibleVersion(snapshot_, tid_);
    if (visible == nullptr || visible->tombstone) continue;
    auto tuple = schema::Tuple::Deserialize(schema, visible->payload);
    if (!tuple.ok() || !predicate(*tuple)) continue;
    out.emplace_back(key.second, std::move(*tuple));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (limit != 0 && out.size() > limit) out.resize(limit);
  return out;
}

Result<store::FragmentScanOutcome> Transaction::ExecuteScanFragment(
    TableHandle* table, uint64_t descriptor_bytes,
    const store::FragmentSinkFactory& make_sink) {
  TELL_CHECK(state_ == TxnState::kRunning);
  obs::PhaseScope span(tracer_, sim::TxnPhase::kRead);
  if (fast_) {
    fallback_ = true;
    return Status::CrossPartition("scan fragments run on the MVCC path");
  }
  if (HasDirtyWrites(table)) {
    return Status::InvalidArgument(
        "scan fragment with buffered dirty writes: use the row path");
  }
  TELL_ASSIGN_OR_RETURN(
      store::FragmentScanOutcome outcome,
      client_->ExecuteFragmentScan(table->meta->data_table, descriptor_bytes,
                                   make_sink));
  sim::WorkerMetrics* metrics = client_->metrics();
  metrics->scan_fragments += outcome.partitions;
  metrics->scan_rows_scanned += outcome.rows_scanned;
  metrics->scan_rows_returned += outcome.rows_returned;
  metrics->scan_chunk_lock_releases += outcome.chunk_lock_releases;
  if (outcome.baseline_bytes > outcome.response_bytes) {
    metrics->scan_bytes_saved +=
        outcome.baseline_bytes - outcome.response_bytes;
  }
  return outcome;
}

Status Transaction::FinishCommitEmpty() {
  Status st = session_->commitmgr_client()->Finish(commit_manager_, tid_,
                                                   /*committed=*/true);
  state_ = TxnState::kCommitted;
  client_->metrics()->committed += 1;
  return st;
}

Status Transaction::Commit() {
  if (state_ != TxnState::kRunning) {
    return Status::InvalidArgument("transaction not running");
  }
  if (fast_) return CommitFast();
  obs::PhaseScope commit_span(tracer_, sim::TxnPhase::kCommit);
  client_->ChargeCpu(client_->options().cpu.per_txn_ns);

  std::vector<RecordKey> dirty;
  for (auto& [key, state] : buffer_) {
    if (state.dirty) dirty.push_back(key);
  }
  if (dirty.empty()) return FinishCommitEmpty();

  // Phase fence: hold the touched lanes shared for the WHOLE commit (log
  // append through finish or rollback), so a fast transaction never
  // observes a half-applied MVCC write set. Released by the guard on every
  // exit path below, bumping the lanes' epochs so cached fast-tid batches
  // are invalidated.
  FastPathCoordinator::MvccFenceGuard fence_guard;
  if (FastPathCoordinator* fastpath = session_->fastpath()) {
    std::vector<uint32_t> lanes;
    bool reference_exclusive = false;
    for (const RecordKey& key : dirty) {
      const RecordState& state = buffer_[key];
      if (state.unpartitioned || state.partitions.empty()) {
        reference_exclusive = true;
      }
      for (int64_t partition : state.partitions) {
        lanes.push_back(fastpath->LaneFor(partition));
      }
    }
    fence_guard = fastpath->AcquireMvccFences(std::move(lanes),
                                              reference_exclusive,
                                              client_->metrics());
  }

  // 1. Try-Commit: append the log entry with the write set (§4.3 step 3).
  LogEntry entry;
  entry.tid = tid_;
  entry.pn_id = session_->pn_id();
  entry.timestamp_ns = session_->clock()->now_ns();
  for (const RecordKey& key : dirty) entry.write_set.push_back(key);
  Status log_status = session_->log()->Append(client_, entry);
  if (!log_status.ok()) {
    (void)session_->commitmgr_client()->Finish(commit_manager_, tid_,
                                               /*committed=*/false);
    state_ = TxnState::kAborted;
    client_->metrics()->aborted += 1;
    return log_status;
  }

  // 2. Apply all buffered updates with LL/SC conditional puts. Records also
  //    get their eager version GC here (§5.4: "record GC is part of the
  //    update process"). The apply + read-set validation is the conflict
  //    detection window, traced as the validate phase.
  std::vector<uint64_t> new_stamps(dirty.size(), 0);
  {
    obs::PhaseScope validate_span(tracer_, sim::TxnPhase::kValidate);
    std::vector<store::WriteOp> ops;
    ops.reserve(dirty.size());
    for (const RecordKey& key : dirty) {
      RecordState& state = buffer_[key];
      client_->metrics()->eager_gc_versions +=
          state.record.CollectGarbage(lav_);
      ops.push_back({key.first, RidKey(key.second), state.record.Serialize(),
                     state.stamp, /*conditional=*/true, /*erase=*/false});
    }
    std::vector<Result<uint64_t>> results = client_->BatchWrite(ops);

    Status failure;
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].ok()) {
        new_stamps[i] = *results[i];
      } else if (failure.ok()) {
        failure = results[i].status();
      }
    }
    if (!failure.ok()) {
      // Write-write conflict (or storage failure): revert the whole dirty
      // set — an ambiguous conditional put may have applied even though it
      // reported failure, and RollbackApplied skips records without our
      // version after one read.
      RollbackApplied(dirty);
      (void)session_->commitmgr_client()->Finish(commit_manager_, tid_,
                                               /*committed=*/false);
      state_ = TxnState::kAborted;
      client_->metrics()->aborted += 1;
      if (failure.IsConditionFailed()) {
        return Status::Aborted("write-write conflict on commit");
      }
      return failure;
    }

    // 2b. Serializable SI: validate the read set AFTER the writes are
    //     installed (Silo-style ordering — see TxnOptions::serializable).
    if (options_.serializable) {
      Status valid = ValidateReadSet();
      if (!valid.ok()) {
        RollbackApplied(dirty);
        (void)session_->commitmgr_client()->Finish(commit_manager_, tid_,
                                               /*committed=*/false);
        state_ = TxnState::kAborted;
        client_->metrics()->aborted += 1;
        return valid;
      }
    }
  }

  // 3. Alter the indexes to reflect the updates (§4.3 step 4a).
  Status index_status = ApplyIndexInserts();
  if (!index_status.ok()) {
    // Unique-index race (two transactions inserting the same key) or a
    // storage failure: the data updates must not become durable — and
    // neither must the index entries inserted so far (ApplyIndexInserts
    // already removed them again), or lookups under those keys would drag a
    // never-committed rid through validation forever (a unique index would
    // even turn it into a permanent InternalError for the racing winner's
    // key).
    RollbackApplied(dirty);
    (void)session_->commitmgr_client()->Finish(commit_manager_, tid_,
                                               /*committed=*/false);
    state_ = TxnState::kAborted;
    client_->metrics()->aborted += 1;
    if (index_status.IsAlreadyExists()) {
      return Status::Aborted("unique index conflict on commit");
    }
    return index_status;
  }

  // 4. Commit flag in the log, then notify the commit manager. The log's
  //    committed flag is the SOURCE OF TRUTH: recovery rolls back every
  //    unflagged entry, so telling the commit manager "committed" while the
  //    flag write failed would let recovery silently undo a transaction
  //    other workers already observed. If the flag cannot be written even
  //    after the client's retries, the transaction must abort instead:
  //    undo indexes and data, then notify the manager of the abort.
  Status mark = session_->log()->MarkCommitted(client_, tid_);
  if (!mark.ok()) {
    client_->metrics()->commit_flag_failures += 1;
    TELL_LOG(kWarn) << "commit flag write failed for tid " << tid_ << " ("
                    << mark.ToString() << "); aborting";
    RollbackIndexInserts(index_ops_.size());
    RollbackApplied(dirty);
    (void)session_->commitmgr_client()->Finish(commit_manager_, tid_,
                                               /*committed=*/false);
    state_ = TxnState::kAborted;
    client_->metrics()->aborted += 1;
    return Status::Aborted("commit flag write failed: " + mark.ToString());
  }
  (void)session_->commitmgr_client()->Finish(commit_manager_, tid_,
                                             /*committed=*/true);

  // 5. Write-through to the PN's shared buffer (if any).
  {
    obs::PhaseScope sync_span(tracer_, sim::TxnPhase::kBufferSync);
    for (size_t i = 0; i < dirty.size(); ++i) {
      RecordState& state = buffer_[dirty[i]];
      session_->record_buffer()->OnApply(client_, dirty[i].first,
                                         dirty[i].second, state.record,
                                         new_stamps[i], tid_, snapshot_);
    }
  }

  state_ = TxnState::kCommitted;
  client_->metrics()->committed += 1;
  return Status::OK();
}

Status Transaction::CommitFast() {
  obs::PhaseScope commit_span(tracer_, sim::TxnPhase::kCommit);
  client_->ChargeCpu(client_->options().cpu.per_txn_ns);
  FastPathCoordinator* fastpath = session_->fastpath();

  std::vector<RecordKey> dirty;
  for (auto& [key, state] : buffer_) {
    if (state.dirty) dirty.push_back(key);
  }
  if (dirty.empty()) {
    // Read-only fast transaction: no tid was ever leased (writes lease
    // lazily) and the commit manager is not contacted at all.
    fastpath->ReleaseFastCommit(lane_, tid_, fast_begin_vns_,
                                session_->worker_id(), client_,
                                session_->clock());
    state_ = TxnState::kCommitted;
    client_->metrics()->committed += 1;
    client_->metrics()->fastpath_hits += 1;
    return Status::OK();
  }

  // With the lane fenced, this transaction owns every record it wrote: no
  // log append, no LL/SC — one coalesced unconditional batch write to the
  // owning storage node. No eager GC either: without a commit-manager Begin
  // there is no lav_, so nothing can be proven collectible; the MVCC path's
  // lazy GC picks these versions up later.
  std::vector<store::WriteOp> ops;
  ops.reserve(dirty.size());
  for (const RecordKey& key : dirty) {
    RecordState& state = buffer_[key];
    ops.push_back({key.first, RidKey(key.second), state.record.Serialize(),
                   store::kStampAbsent, /*conditional=*/false,
                   /*erase=*/false});
  }
  std::vector<Result<uint64_t>> results = client_->BatchWrite(ops);
  Status failure;
  for (const Result<uint64_t>& r : results) {
    if (!r.ok() && failure.ok()) failure = r.status();
  }
  // Data before index, same as the MVCC path: an index entry must never
  // point at a rid whose record write has not landed.
  Status index_status = failure.ok() ? ApplyIndexInserts() : Status::OK();
  if (!failure.ok() || !index_status.ok()) {
    // Storage failure mid-apply (write-write races cannot happen on the
    // fenced lane, but unconditional writes still fail on a dead node):
    // revert what made it in. ApplyIndexInserts already removed its own
    // entries. If any record could not be reverted, leave the tid
    // UNCOMPLETED — it then pins the snapshot base below the orphan
    // version, so no MVCC snapshot can ever read it.
    bool reverted = RollbackApplied(dirty);
    fastpath->ReleaseFastAbort(lane_, reverted ? tid_ : 0);
    state_ = TxnState::kAborted;
    client_->metrics()->aborted += 1;
    if (!failure.ok()) return failure;
    if (index_status.IsAlreadyExists()) {
      return Status::Aborted("unique index conflict on commit");
    }
    return index_status;
  }

  fastpath->ReleaseFastCommit(lane_, tid_, fast_begin_vns_,
                              session_->worker_id(), client_,
                              session_->clock());
  state_ = TxnState::kCommitted;
  client_->metrics()->committed += 1;
  client_->metrics()->fastpath_hits += 1;
  return Status::OK();
}

bool Transaction::RollbackApplied(const std::vector<RecordKey>& dirty) {
  bool all_resolved = true;
  for (const RecordKey& key : dirty) {
    bool resolved = false;
    for (int retry = 0; retry < kMaxRollbackRetries; ++retry) {
      auto cell = client_->Get(key.first, RidKey(key.second));
      if (!cell.ok()) {
        // NotFound means there is nothing to revert. Anything else is a
        // transient failure that survived the client's own retries: leave
        // the version to lazy GC rather than giving up silently.
        resolved = cell.status().IsNotFound();
        break;
      }
      auto record = schema::VersionedRecord::Deserialize(cell->value);
      if (!record.ok()) break;  // corrupt cell; nothing sensible to write
      if (!record->RemoveVersion(tid_)) {
        resolved = true;  // no version of ours (not applied / already done)
        break;
      }
      Status st;
      if (record->Empty()) {
        st = client_->ConditionalErase(key.first, RidKey(key.second),
                                       cell->stamp);
      } else {
        st = client_
                 ->ConditionalPut(key.first, RidKey(key.second), cell->stamp,
                                  record->Serialize())
                 .status();
      }
      if (st.ok()) {
        resolved = true;
        break;
      }
      // ConditionFailed: a concurrent writer moved the stamp — re-read and
      // retry. Any other failure exhausted the client's retries already.
      if (!st.IsConditionFailed()) break;
    }
    if (!resolved) {
      client_->metrics()->rollback_unresolved += 1;
      all_resolved = false;
    }
  }
  return all_resolved;
}

Status Transaction::ApplyIndexInserts() {
  if (client_->options().pipelining && index_ops_.size() > 1) {
    // Group the ops per tree in first-appearance order (deterministic; a
    // transaction touches only a handful of indexes, so linear search).
    std::vector<index::BTree*> trees;
    std::vector<std::vector<size_t>> groups;
    for (size_t i = 0; i < index_ops_.size(); ++i) {
      size_t g = 0;
      while (g < trees.size() && trees[g] != index_ops_[i].tree) ++g;
      if (g == trees.size()) {
        trees.push_back(index_ops_[i].tree);
        groups.emplace_back();
      }
      groups[g].push_back(i);
    }
    std::vector<char> applied(index_ops_.size(), 0);
    Status failure;
    for (size_t g = 0; g < trees.size() && failure.ok(); ++g) {
      std::vector<index::BatchInsertOp> ops;
      ops.reserve(groups[g].size());
      for (size_t i : groups[g]) {
        ops.push_back({index_ops_[i].key, index_ops_[i].rid,
                       index_ops_[i].unique});
      }
      std::vector<bool> inserted;
      Status st = trees[g]->BatchInsert(client_, ops, &inserted);
      for (size_t j = 0; j < groups[g].size(); ++j) {
        applied[groups[g][j]] = inserted[j] ? 1 : 0;
      }
      if (!st.ok()) failure = st;
    }
    if (!failure.ok()) {
      // Undo exactly the entries that made it in before the failure.
      for (size_t i = 0; i < index_ops_.size(); ++i) {
        if (applied[i] == 0) continue;
        (void)index_ops_[i].tree->Remove(client_, index_ops_[i].key,
                                         index_ops_[i].rid);
        client_->metrics()->index_rollbacks += 1;
      }
      return failure;
    }
    return Status::OK();
  }

  size_t inserted = 0;
  for (const IndexOp& op : index_ops_) {
    Status st = op.tree->Insert(client_, op.key, op.rid, op.unique);
    if (!st.ok()) {
      RollbackIndexInserts(inserted);
      return st;
    }
    ++inserted;
  }
  return Status::OK();
}

void Transaction::RollbackIndexInserts(size_t count) {
  // Undo of commit step 3. Remove is idempotent, and no other transaction
  // can have inserted the same (key, rid) pair: reaching step 3 requires
  // winning the LL/SC on the record, so two live transactions never carry
  // index ops for the same rid.
  for (size_t i = 0; i < count && i < index_ops_.size(); ++i) {
    const IndexOp& op = index_ops_[i];
    (void)op.tree->Remove(client_, op.key, op.rid);
    client_->metrics()->index_rollbacks += 1;
  }
}

Status Transaction::Abort() {
  if (state_ != TxnState::kRunning) {
    return Status::InvalidArgument("transaction not running");
  }
  if (fast_) {
    // Nothing was applied (fast writes only land in CommitFast). A fallback
    // is not a real abort — the caller re-runs the transaction on the MVCC
    // path — so it is counted separately.
    session_->fastpath()->ReleaseFastAbort(lane_, tid_);
    state_ = TxnState::kAborted;
    if (fallback_) {
      client_->metrics()->fastpath_fallbacks += 1;
    } else {
      client_->metrics()->aborted += 1;
    }
    return Status::OK();
  }
  // Manual abort: nothing was applied (we never reached Try-Commit), so only
  // the commit manager needs to know (§4.3 step 4b).
  (void)session_->commitmgr_client()->Finish(commit_manager_, tid_,
                                               /*committed=*/false);
  state_ = TxnState::kAborted;
  client_->metrics()->aborted += 1;
  return Status::OK();
}

size_t Transaction::PendingWrites() const {
  size_t count = 0;
  for (const auto& [key, state] : buffer_) {
    if (state.dirty) ++count;
  }
  return count;
}

}  // namespace tell::tx
