#ifndef TELL_TX_FAST_PATH_H_
#define TELL_TX_FAST_PATH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "commitmgr/commit_manager.h"
#include "common/exec_hooks.h"
#include "common/result.h"
#include "common/status.h"
#include "sim/metrics.h"
#include "sim/virtual_clock.h"
#include "store/storage_client.h"

namespace tell::tx {

using commitmgr::Tid;

/// Options of the single-partition fast path (DESIGN.md "Phase-switching
/// fast path"). Off by default: the fast path changes the commit protocol
/// for single-home transactions and callers opt in per TellDb instance.
struct FastPathOptions {
  bool enabled = false;
  /// Number of serial lanes partitions hash onto. Partitions sharing a lane
  /// share one serial fast queue; lanes >= partitions gives full separation.
  uint32_t lanes = 64;
  /// Fast tids are leased from the global tid counter in batches of this
  /// size (one commit-manager message per batch).
  uint32_t tid_lease_size = 64;
  /// Fast-commit completions are sent to the commit manager in batches of
  /// this size (plus a forced flush before every MVCC begin).
  uint32_t completion_flush = 64;
};

/// A reader/writer spin fence with writer preference, usable from both the
/// legacy thread-per-worker drivers and executor fibers (waiters yield via
/// exec_hooks so a fiber never blocks its core). The phase fences must not
/// park on an OS mutex: a fast transaction holds its lane for microseconds
/// of real time and fairness matters more than cheap blocking.
///
/// Lock/unlock pairs establish happens-before through the state atomic
/// (acquire on lock, release on unlock), so data written under the
/// exclusive side is visible to later holders — including to TSan.
class SpinSharedMutex {
 public:
  /// Exclusive acquire. Returns true if it had to wait.
  bool Lock() {
    state_.fetch_add(kPendingOne, std::memory_order_acq_rel);
    bool waited = false;
    for (;;) {
      uint32_t s = state_.load(std::memory_order_acquire);
      if ((s & (kWriterHeld | kReaderMask)) == 0) {
        if (state_.compare_exchange_weak(s, (s - kPendingOne) | kWriterHeld,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
          return waited;
        }
      }
      waited = true;
      Yield();
    }
  }

  void Unlock() {
    state_.fetch_and(~kWriterHeld, std::memory_order_release);
  }

  /// Shared acquire; blocks while a writer holds OR WAITS (writer
  /// preference, so a stream of readers cannot starve the other phase).
  /// Returns true if it had to wait.
  bool LockShared() {
    bool waited = false;
    for (;;) {
      uint32_t s = state_.load(std::memory_order_acquire);
      if ((s & (kWriterHeld | kPendingMask)) == 0) {
        if (state_.compare_exchange_weak(s, s + 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
          return waited;
        }
      }
      waited = true;
      Yield();
    }
  }

  void UnlockShared() { state_.fetch_sub(1, std::memory_order_release); }

 private:
  static void Yield() {
    // Executor fibers yield back to their scheduler (the core runs other
    // tasks and resumes us later); legacy threads yield to the OS.
    if (exec_hooks::InTask()) {
      exec_hooks::MaybeYield();
    } else {
      std::this_thread::yield();
    }
  }

  static constexpr uint32_t kReaderMask = 0xFFFF;       // bits 0..15
  static constexpr uint32_t kPendingOne = 1u << 16;     // bits 16..30
  static constexpr uint32_t kPendingMask = 0x7FFF0000;
  static constexpr uint32_t kWriterHeld = 1u << 31;

  std::atomic<uint32_t> state_{0};
};

/// PN-wide coordinator of the phase-switching fast path. One per TellDb.
///
/// Model: every logical partition hashes onto one of `lanes` serial lanes.
/// A single-partition transaction holds its home lane's fence EXCLUSIVE for
/// its whole lifetime — the lane is a serial execution queue, so the fast
/// transaction needs no commit-manager begin, no snapshot and no LL/SC: with
/// the lane fenced, every version in the partition is settled and Newest()
/// is the serialization-consistent read. An MVCC transaction holds the
/// fences of the lanes its write set touches SHARED for the whole commit
/// (log append through finish/rollback), so fast commits never interleave
/// with a half-applied MVCC write set and vice versa. Unpartitioned
/// reference tables are guarded by one global reference fence: fast
/// transactions read them under the shared side, MVCC commits writing them
/// take it exclusive. Fence order is lanes ascending, reference last —
/// acquisition is globally ordered, hence deadlock free.
///
/// Fast tids are leased in batches from the same sequential stream MVCC
/// begins draw on (CommitManager::LeaseFastTids) — version order within a
/// record is tid order, so assignment order must match begin order across
/// both phases (which is also why the fast path requires a single
/// range-based commit manager). A lane's cached batch is invalidated
/// whenever an MVCC commit releases that lane (mvcc_epoch): tids handed out
/// after the lease are larger than the cached batch, so the lane re-leases
/// before writing under them. Together these keep the invariant that a fast
/// write is always the newest version in its lane. Discarded and committed
/// tids are completed at the commit manager in batches; an uncompleted
/// leased tid pins the snapshot base (and the GC horizon), which is exactly
/// the conservative-safe direction.
class FastPathCoordinator {
 public:
  FastPathCoordinator(const FastPathOptions& options,
                      commitmgr::CommitManagerGroup* managers);

  FastPathCoordinator(const FastPathCoordinator&) = delete;
  FastPathCoordinator& operator=(const FastPathCoordinator&) = delete;

  uint32_t num_lanes() const { return num_lanes_; }

  uint32_t LaneFor(int64_t partition) const {
    return static_cast<uint32_t>(static_cast<uint64_t>(partition) %
                                 num_lanes_);
  }

  // --- Fast side (the transaction holds the lane for its lifetime) -------

  /// Blocks until `lane` is exclusively held plus the reference fence
  /// shared. Counts tx.fastpath.fence_waits per fence that had to wait.
  void AcquireFastFences(uint32_t lane, sim::WorkerMetrics* metrics);

  /// Hands out the next fast tid for `lane` (caller holds the lane
  /// exclusively). Refreshes the lane's cached batch from the global
  /// counter when it is exhausted or was invalidated by an MVCC commit.
  Result<Tid> LeaseTid(uint32_t lane, uint32_t worker_id,
                       store::StorageClient* client);

  /// Commit release: queues `tid` (0 = read-only, nothing to complete) for
  /// batched completion, charges the lane's serial virtual-time queue
  /// (a lane is one resource: commits that overlapped in real time
  /// serialize in virtual time), and releases the fences.
  void ReleaseFastCommit(uint32_t lane, Tid tid, uint64_t begin_vns,
                         uint32_t worker_id, store::StorageClient* client,
                         sim::VirtualClock* clock);

  /// Abort/fallback release: nothing was applied; the leased tid (if any)
  /// is queued for completion and the fences released. No lane time is
  /// charged — a fallback must look exactly as if the transaction had
  /// never entered the fast phase.
  void ReleaseFastAbort(uint32_t lane, Tid tid);

  // --- MVCC side ---------------------------------------------------------

  /// Fences held by one MVCC commit: the touched lanes shared (ascending)
  /// plus, when the write set includes unpartitioned tables, the reference
  /// fence exclusive. Destruction bumps each lane's mvcc_epoch (invalidating
  /// cached fast-tid batches) before releasing.
  class MvccFenceGuard {
   public:
    MvccFenceGuard() = default;
    MvccFenceGuard(MvccFenceGuard&& other) noexcept { *this = std::move(other); }
    MvccFenceGuard& operator=(MvccFenceGuard&& other) noexcept {
      Release();
      coordinator_ = other.coordinator_;
      lanes_ = std::move(other.lanes_);
      reference_exclusive_ = other.reference_exclusive_;
      other.coordinator_ = nullptr;
      other.reference_exclusive_ = false;
      return *this;
    }
    MvccFenceGuard(const MvccFenceGuard&) = delete;
    MvccFenceGuard& operator=(const MvccFenceGuard&) = delete;
    ~MvccFenceGuard() { Release(); }

   private:
    friend class FastPathCoordinator;
    void Release();

    FastPathCoordinator* coordinator_ = nullptr;
    std::vector<uint32_t> lanes_;
    bool reference_exclusive_ = false;
  };

  /// Blocks until the given lanes are held shared (sorted + deduped
  /// internally) and, if requested, the reference fence exclusive.
  MvccFenceGuard AcquireMvccFences(std::vector<uint32_t> lanes,
                                   bool reference_exclusive,
                                   sim::WorkerMetrics* metrics);

  /// Sends every queued fast completion to the commit manager now. Called
  /// before each MVCC begin (so new snapshots include earlier fast commits
  /// — read-your-writes across phases) and on TellDb shutdown.
  void FlushPending(uint32_t worker_id, store::StorageClient* client);

  /// Queued-but-unsent completions (tests).
  size_t PendingCompletions() const;

 private:
  struct alignas(64) Lane {
    SpinSharedMutex fence;
    /// Bumped by every MVCC fence release of this lane; compared against
    /// lease_epoch to invalidate the cached tid batch.
    std::atomic<uint64_t> mvcc_epoch{0};
    // The fields below are touched only while `fence` is held exclusively.
    std::vector<Tid> leased;
    size_t next_leased = 0;
    uint64_t lease_epoch = 0;
    /// Virtual time until which the lane's serial queue is busy.
    uint64_t busy_until_ns = 0;
  };

  /// Adds tids to the completion queue; flushes when the batch is full.
  void QueueCompletions(const Tid* tids, size_t count, uint32_t worker_id,
                        store::StorageClient* client);

  const FastPathOptions options_;
  commitmgr::CommitManagerGroup* const managers_;
  /// Fixed array: Lane holds atomics, so it is neither copyable nor movable.
  const uint32_t num_lanes_;
  std::unique_ptr<Lane[]> lanes_;
  SpinSharedMutex reference_fence_;

  mutable std::mutex pending_mutex_;
  std::vector<Tid> pending_;
};

}  // namespace tell::tx

#endif  // TELL_TX_FAST_PATH_H_
