#ifndef TELL_TX_RECORD_BUFFER_H_
#define TELL_TX_RECORD_BUFFER_H_

#include <cstdint>
#include <string>

#include "commitmgr/snapshot_descriptor.h"
#include "common/result.h"
#include "common/serde.h"
#include "schema/versioned_record.h"
#include "store/storage_client.h"

namespace tell::tx {

using commitmgr::SnapshotDescriptor;
using commitmgr::Tid;

/// A record as held client-side: the parsed version set plus the LL/SC stamp
/// it was read with.
struct FetchedRecord {
  schema::VersionedRecord record;
  uint64_t stamp = store::kStampAbsent;
};

/// Point-in-time copy of a shared buffer's counters (exported into the
/// obs::MetricsRegistry gauges `buffer.shared.*` by db::TellDb). Unlike the
/// per-worker `buffer_hits`/`buffer_misses` in sim::WorkerMetrics, these are
/// the buffer's own view: they include evictions and write-throughs, which no
/// single worker observes.
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t write_throughs = 0;

  void Accumulate(const BufferStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    write_throughs += other.write_throughs;
  }
};

/// PN-level record buffering strategy (paper §5.5). The transaction's own
/// private buffer (strategy TB, §5.5.1) always exists inside Transaction;
/// an implementation of this interface optionally adds a buffer layer shared
/// by all transactions of a processing node:
///   * PassthroughBuffer  — no shared layer (= strategy TB alone),
///   * SharedRecordBuffer — §5.5.2 (strategy SB),
///   * VersionSyncBuffer  — §5.5.3 (strategy SBVS).
class RecordBuffer {
 public:
  virtual ~RecordBuffer() = default;

  /// Produces the record under (table, rid) in a state valid for a
  /// transaction reading with `snapshot`. Either serves a buffered copy or
  /// fetches from the storage system through `client` (charging its costs).
  /// NotFound if the record does not exist.
  virtual Result<FetchedRecord> Read(store::StorageClient* client,
                                     store::TableId table, uint64_t rid,
                                     const SnapshotDescriptor& snapshot) = 0;

  /// Called after a transaction successfully applied a record at commit:
  /// write-through so the buffer stays coherent. `tid` is the writer and
  /// `snapshot` its descriptor; `stamp` the new LL/SC stamp.
  virtual void OnApply(store::StorageClient* client, store::TableId table,
                       uint64_t rid, const schema::VersionedRecord& record,
                       uint64_t stamp, Tid tid,
                       const SnapshotDescriptor& snapshot) = 0;

  /// Called when a new transaction begins on this PN, with its snapshot —
  /// the buffers use the most recent snapshot (V_max) to label fetched
  /// records with the largest valid version set.
  virtual void OnTransactionStart(const SnapshotDescriptor& snapshot) = 0;

  /// True if the strategy has no PN-level state, so the transaction layer
  /// may fetch groups of records itself with one batched request.
  virtual bool PrefersBatchFetch() const { return false; }

  /// Adds this buffer's counters into `*out`. Strategies without PN-level
  /// state contribute nothing (their misses are visible in the per-worker
  /// metrics already).
  virtual void AccumulateStats(BufferStats* out) const { (void)out; }
};

/// No shared buffering: every read (beyond the transaction's private buffer)
/// fetches the latest record from the storage system. This is the paper's
/// default and, per §6.7, the fastest strategy under TPC-C with fast RDMA.
class PassthroughBuffer final : public RecordBuffer {
 public:
  Result<FetchedRecord> Read(store::StorageClient* client,
                             store::TableId table, uint64_t rid,
                             const SnapshotDescriptor& snapshot) override {
    (void)snapshot;
    auto cell = client->Get(table, EncodeOrderedU64(rid));
    client->metrics()->buffer_misses += 1;
    if (!cell.ok()) return cell.status();
    TELL_ASSIGN_OR_RETURN(schema::VersionedRecord record,
                          schema::VersionedRecord::Deserialize(cell->value));
    return FetchedRecord{std::move(record), cell->stamp};
  }

  void OnApply(store::StorageClient*, store::TableId, uint64_t,
               const schema::VersionedRecord&, uint64_t, Tid,
               const SnapshotDescriptor&) override {}

  void OnTransactionStart(const SnapshotDescriptor&) override {}

  bool PrefersBatchFetch() const override { return true; }
};

}  // namespace tell::tx

#endif  // TELL_TX_RECORD_BUFFER_H_
