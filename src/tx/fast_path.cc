#include "tx/fast_path.h"

#include <algorithm>

#include "common/logging.h"

namespace tell::tx {

FastPathCoordinator::FastPathCoordinator(
    const FastPathOptions& options, commitmgr::CommitManagerGroup* managers)
    : options_(options),
      managers_(managers),
      num_lanes_(options.lanes == 0 ? 1 : options.lanes),
      lanes_(new Lane[num_lanes_]) {
  TELL_CHECK(managers_ != nullptr);
}

void FastPathCoordinator::AcquireFastFences(uint32_t lane,
                                            sim::WorkerMetrics* metrics) {
  // Lane first, reference last — the one global fence order (see class
  // comment); every acquirer follows it, so waiting chains never cycle.
  if (lanes_[lane].fence.Lock()) metrics->fastpath_fence_waits += 1;
  if (reference_fence_.LockShared()) metrics->fastpath_fence_waits += 1;
}

Result<Tid> FastPathCoordinator::LeaseTid(uint32_t lane, uint32_t worker_id,
                                          store::StorageClient* client) {
  Lane& l = lanes_[lane];
  // Stable while we hold the lane exclusively: no MVCC commit touching this
  // lane can be in flight, so the epoch cannot move under us.
  const uint64_t epoch = l.mvcc_epoch.load(std::memory_order_acquire);
  if (l.next_leased >= l.leased.size() || l.lease_epoch != epoch) {
    if (l.next_leased < l.leased.size()) {
      // An MVCC commit slipped into this lane since the batch was leased,
      // so the remaining tids may no longer exceed every settled version —
      // discard them. They must still be COMPLETED: a leased tid that never
      // completes would pin the snapshot base (and the GC horizon) forever.
      QueueCompletions(l.leased.data() + l.next_leased,
                       l.leased.size() - l.next_leased, worker_id, client);
    }
    l.leased.clear();
    l.next_leased = 0;
    uint64_t election_ns = 0;
    commitmgr::CommitManager* manager =
        managers_->ManagerFor(worker_id, &election_ns);
    if (manager == nullptr) {
      return Status::Unavailable("no live commit manager for fast-tid lease");
    }
    // Lease request, with fault injection. Response loss is modeled as
    // request loss here (drop_response is treated like drop_request): a
    // leased-but-unacked batch would orphan tids on the leader until the
    // next election, and the paper's lease protocol acks synchronously
    // anyway (docs/RECOVERY.md "Fast-path leases under fail-over").
    sim::FaultInjector* injector = client->options().fault_injector;
    auto issue = [&](commitmgr::CommitManager* m) -> Result<std::vector<Tid>> {
      if (injector != nullptr) {
        sim::FaultInjector::Decision d = injector->OnRequest(
            sim::FaultOpClass::kCommitMgrLease, m->state_table());
        if (d.kill_commit_leader) m->Kill();
        if (d.extra_latency_ns > 0) client->clock()->Advance(d.extra_latency_ns);
        if (d.drop_request || d.drop_response || d.kill_commit_leader) {
          return Status::Unavailable("injected fault: lease lost");
        }
      }
      return m->LeaseFastTids(options_.tid_lease_size);
    };
    Result<std::vector<Tid>> fresh = issue(manager);
    const store::RetryPolicy& retry = client->options().retry;
    for (uint32_t attempt = 1;
         !fresh.ok() && fresh.status().IsUnavailable() &&
         attempt < retry.max_attempts;
         ++attempt) {
      manager = managers_->ManagerFor(worker_id, &election_ns);
      if (election_ns > 0) {
        client->clock()->Advance(election_ns);
        election_ns = 0;
      }
      if (manager == nullptr) break;
      fresh = issue(manager);
    }
    if (election_ns > 0) client->clock()->Advance(election_ns);
    if (!fresh.ok()) return fresh.status();
    l.leased = std::move(fresh).value();
    l.lease_epoch = epoch;
    // One small request, a response carrying the leased range.
    client->ChargeRpc(64, 16 + 8 * options_.tid_lease_size);
    client->metrics()->fastpath_tid_leases += 1;
  }
  return l.leased[l.next_leased++];
}

void FastPathCoordinator::ReleaseFastCommit(uint32_t lane, Tid tid,
                                            uint64_t begin_vns,
                                            uint32_t worker_id,
                                            store::StorageClient* client,
                                            sim::VirtualClock* clock) {
  Lane& l = lanes_[lane];
  // The lane is ONE serial resource. Workers run on independent virtual
  // clocks, so two fast commits that overlapped in real time must still
  // serialize in virtual time or the lane's capacity would be counted
  // twice: queue this commit behind the lane's busy horizon.
  const uint64_t now = clock->now_ns();
  const uint64_t service = now - begin_vns;
  const uint64_t start = std::max(begin_vns, l.busy_until_ns);
  l.busy_until_ns = start + service;
  clock->AdvanceTo(l.busy_until_ns);
  if (tid != 0) QueueCompletions(&tid, 1, worker_id, client);
  reference_fence_.UnlockShared();
  l.fence.Unlock();
}

void FastPathCoordinator::ReleaseFastAbort(uint32_t lane, Tid tid) {
  if (tid != 0) {
    // Queue without flushing (no client here): the next commit or MVCC
    // begin carries it out.
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.push_back(tid);
  }
  reference_fence_.UnlockShared();
  lanes_[lane].fence.Unlock();
}

FastPathCoordinator::MvccFenceGuard FastPathCoordinator::AcquireMvccFences(
    std::vector<uint32_t> lanes, bool reference_exclusive,
    sim::WorkerMetrics* metrics) {
  std::sort(lanes.begin(), lanes.end());
  lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
  for (uint32_t lane : lanes) {
    if (lanes_[lane].fence.LockShared()) metrics->fastpath_fence_waits += 1;
  }
  if (reference_exclusive) {
    if (reference_fence_.Lock()) metrics->fastpath_fence_waits += 1;
  }
  MvccFenceGuard guard;
  guard.coordinator_ = this;
  guard.lanes_ = std::move(lanes);
  guard.reference_exclusive_ = reference_exclusive;
  return guard;
}

void FastPathCoordinator::MvccFenceGuard::Release() {
  if (coordinator_ == nullptr) return;
  if (reference_exclusive_) coordinator_->reference_fence_.Unlock();
  for (uint32_t lane : lanes_) {
    Lane& l = coordinator_->lanes_[lane];
    // Invalidate cached fast-tid batches BEFORE the fence release: the next
    // fast transaction on this lane reads the epoch after acquiring the
    // fence exclusively, so it always sees this bump.
    l.mvcc_epoch.fetch_add(1, std::memory_order_release);
    l.fence.UnlockShared();
  }
  coordinator_ = nullptr;
  lanes_.clear();
  reference_exclusive_ = false;
}

void FastPathCoordinator::QueueCompletions(const Tid* tids, size_t count,
                                           uint32_t worker_id,
                                           store::StorageClient* client) {
  bool flush = false;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.insert(pending_.end(), tids, tids + count);
    flush = pending_.size() >= options_.completion_flush;
  }
  if (flush) FlushPending(worker_id, client);
}

void FastPathCoordinator::FlushPending(uint32_t worker_id,
                                       store::StorageClient* client) {
  std::vector<Tid> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    batch.swap(pending_);
  }
  if (batch.empty()) return;
  commitmgr::CommitManager* manager = managers_->ManagerFor(worker_id);
  Status st = manager == nullptr
                  ? Status::Unavailable("no live commit manager")
                  : manager->CompleteFast(batch);
  if (manager != nullptr) {
    // One batched message: header + one tid each, tiny ack back.
    client->ChargeRpc(16 + 8 * batch.size(), 16);
    client->metrics()->fastpath_flushes += 1;
  }
  if (!st.ok()) {
    // Keep the tids queued: uncompleted tids pin the snapshot base, which
    // is safe; a later flush retries.
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.insert(pending_.end(), batch.begin(), batch.end());
  }
}

size_t FastPathCoordinator::PendingCompletions() const {
  std::lock_guard<std::mutex> lock(pending_mutex_);
  return pending_.size();
}

}  // namespace tell::tx
