#include "tx/commit_manager_client.h"

#include <algorithm>

#include "common/exec_hooks.h"

namespace tell::tx {

namespace {
// Modelled wire sizes (bytes). Begin keeps the old synchronous call's
// convention — 16-byte request, 24-byte response header plus the snapshot
// payload — with the payload now the serialized delta instead of the raw
// bitset. A finish carries a tid + flags and gets a bare ack. Framing
// matches the storage layer's per-request header.
constexpr uint64_t kFramingBytes = 32;
constexpr uint64_t kStartRequestBytes = 16;
constexpr uint64_t kStartResponseHeaderBytes = 24;
constexpr uint64_t kFinishRequestBytes = 12;
constexpr uint64_t kFinishResponseBytes = 4;
// Full-form SnapshotDelta wire size for a given descriptor: the 13-byte
// envelope + u32 length prefix + the serialized descriptor.
uint64_t FullWireBytes(const commitmgr::SnapshotDescriptor& snapshot) {
  return 13 + 4 + snapshot.SerializedBytes();
}
// Deferred finishes are bounded so a worker that stops beginning
// transactions cannot accumulate uncharged messages without limit.
constexpr size_t kMaxDeferredFinishes = 64;
}  // namespace

CommitManagerClient::CommitManagerClient(commitmgr::CommitManagerGroup* group,
                                         store::StorageClient* client,
                                         const CommitSyncOptions& options)
    : group_(group),
      client_(client),
      options_(options),
      rng_(client->options().retry_seed ^ 0xC933A1D6'5B7F0E24ULL),
      token_salt_(client->options().retry_seed * 0x9E3779B97F4A7C15ULL +
                  0x2545F4914F6CDD1DULL) {}

CommitManagerClient::~CommitManagerClient() { FlushPendingAccounting(); }

uint64_t CommitManagerClient::NextToken() {
  // Unique across workers with overwhelming probability: the salt mixes the
  // worker's distinct retry seed. Tokens only need to be unique among
  // concurrently active transactions of one manager (entries die with their
  // active transaction). 0 is reserved for "no token".
  uint64_t token = token_salt_ ^ (++token_counter_ * 0xFF51AFD7ED558CCDULL);
  return token == 0 ? 1 : token;
}

void CommitManagerClient::ChargeMessage(
    const std::vector<std::pair<uint64_t, uint64_t>>& ops) {
  sim::NetworkModel::CoalescedCost cost =
      client_->options().network.CoalescedRequestCost(ops, kFramingBytes);
  client_->clock()->Advance(cost.message_ns);
  uint64_t request_bytes = kFramingBytes;
  uint64_t response_bytes = 0;
  for (const auto& [req, resp] : ops) {
    request_bytes += req;
    response_bytes += resp;
  }
  sim::WorkerMetrics* m = client_->metrics();
  m->storage_requests += 1;
  m->bytes_sent += request_bytes;
  m->bytes_received += response_bytes;
  m->cm_messages += 1;
  m->cm_ops += ops.size();
  m->cm_bytes += request_bytes + response_bytes;
  m->cm_batch_size.Record(ops.size());
  m->cm_batch_saved_ns += cost.serial_ns - cost.message_ns;
}

void CommitManagerClient::FlushPendingExcept(uint32_t manager_id) {
  // Group by manager (ordered map: deterministic message order).
  std::map<uint32_t, size_t> per_manager;
  std::vector<uint32_t> kept;
  for (uint32_t id : pending_) {
    if (id == manager_id) {
      kept.push_back(id);
    } else {
      per_manager[id] += 1;
    }
  }
  pending_ = std::move(kept);
  for (const auto& [id, count] : per_manager) {
    ChargeMessage(std::vector<std::pair<uint64_t, uint64_t>>(
        count, {kFinishRequestBytes, kFinishResponseBytes}));
  }
}

void CommitManagerClient::FlushPendingAccounting() {
  // UINT32_MAX is never a manager id, so nothing is kept back.
  FlushPendingExcept(UINT32_MAX);
}

Status CommitManagerClient::Finish(commitmgr::CommitManager* manager,
                                   commitmgr::Tid tid, bool committed) {
  // State applies at the manager immediately — the snapshot base and the
  // GC horizon must see completions without delay; only the message COST is
  // deferred onto the worker's next begin (group begin/finish). Honest with
  // respect to the simulator: server-side application is instant shared
  // memory either way, so eager application with deferred accounting is
  // indistinguishable from a delayed message that cannot be lost.
  sim::FaultInjector* injector = client_->options().fault_injector;
  auto apply = [&](commitmgr::CommitManager* m) -> Status {
    // Only the synchronous path consults the injector here: batched
    // finishes are evaluated as part of the next begin's coalesced message,
    // the same unit the accounting charges.
    if (!options_.batching && injector != nullptr) {
      sim::FaultInjector::Decision d = injector->OnRequest(
          sim::FaultOpClass::kCommitMgrFinish, m->state_table());
      bool kill_after = d.kill_commit_leader && d.drop_response;
      if (d.kill_commit_leader && !kill_after) m->Kill();  // dies mid-Finish
      if (d.extra_latency_ns > 0) {
        client_->clock()->Advance(d.extra_latency_ns);
      }
      if (d.drop_request) {
        return Status::Unavailable("injected fault: request dropped");
      }
      Status st = committed ? m->SetCommitted(tid) : m->SetAborted(tid);
      if (kill_after) m->Kill();
      if (d.drop_response) {
        return Status::Unavailable(
            "injected fault: response dropped (ambiguous outcome)");
      }
      return st;
    }
    return committed ? m->SetCommitted(tid) : m->SetAborted(tid);
  };
  Status st = apply(manager);
  // A completion must reach the slot or its tid pins the snapshot base and
  // the GC horizon. Retry against the SAME slot only — with replication the
  // probe elects and returns the new leader, which holds the begin via the
  // change log; Complete() dedup makes re-applying an ambiguous finish safe.
  // Without replication the slot stays dead, its id cannot come back from
  // the probe, and the old behavior (error reported, recovery cleans up) is
  // unchanged.
  const store::RetryPolicy& retry = client_->options().retry;
  for (uint32_t attempt = 1;
       st.IsUnavailable() && attempt < retry.max_attempts; ++attempt) {
    uint64_t election_ns = 0;
    commitmgr::CommitManager* next =
        group_->ManagerFor(manager->manager_id(), &election_ns);
    if (election_ns > 0) client_->clock()->Advance(election_ns);
    if (next == nullptr || next->manager_id() != manager->manager_id()) break;
    manager = next;
    uint64_t backoff = retry.BackoffNs(attempt, &rng_);
    client_->clock()->Advance(backoff);
    client_->metrics()->cm_retries += 1;
    client_->metrics()->retry_backoff_ns += backoff;
    st = apply(manager);
  }
  if (options_.batching) {
    pending_.push_back(manager->manager_id());
    if (pending_.size() >= kMaxDeferredFinishes) FlushPendingAccounting();
  } else {
    // Ablation baseline: every finish pays its own round trip, like the
    // paper's synchronous setCommitted/setAborted calls. That round trip
    // is a park point under the executor (batched finishes ride on the
    // next begin and park there instead).
    exec_hooks::MaybeYield();
    ChargeMessage({{kFinishRequestBytes, kFinishResponseBytes}});
  }
  return st;
}

Result<commitmgr::TxnBegin> CommitManagerClient::Begin(uint32_t pn_id) {
  // Park point: a begin is a commit-manager round trip, so under the
  // executor runtime the task yields its core here and pays the modelled
  // cost when rescheduled (no-op under the legacy thread-per-worker
  // drivers; see docs/RUNTIME.md).
  exec_hooks::MaybeYield();
  uint64_t election_ns = 0;
  commitmgr::CommitManager* manager = group_->ManagerFor(pn_id, &election_ns);
  if (election_ns > 0) {
    // This worker's begin found the slot leader dead and triggered the
    // election: it pays the modelled timeout (docs/RECOVERY.md).
    client_->clock()->Advance(election_ns);
    election_ns = 0;
  }
  if (manager == nullptr) {
    return Status::Unavailable("all commit managers down");
  }
  // Deferred finishes destined to other managers (possible after fail-over)
  // cannot ride on this begin; flush them as their own messages first.
  FlushPendingExcept(manager->manager_id());
  size_t batched_finishes = pending_.size();
  pending_.clear();

  commitmgr::BeginRequest request;
  request.pn_id = pn_id;
  request.start_token = NextToken();
  auto fill_ack = [&](uint32_t id) {
    const ManagerCache& cache = cache_[id];
    request.ack_generation = options_.delta ? cache.generation : 0;
    request.ack_epoch = cache.epoch;
    request.want_full = !options_.delta;
  };
  fill_ack(manager->manager_id());

  sim::FaultInjector* injector = client_->options().fault_injector;
  // One attempt with the fault plan applied, mirroring StorageClient's
  // IssueOnce. The first attempt is the coalesced message, so the injector
  // sees the finish ops it carries — the same unit the accounting charges;
  // retries re-issue the begin alone (the finishes are idempotent and
  // already applied).
  auto issue = [&](bool coalesced) -> Result<commitmgr::TxnBeginDelta> {
    sim::FaultInjector::Decision d;
    if (injector != nullptr) {
      uint32_t table = manager->state_table();
      if (coalesced && batched_finishes > 0) {
        std::vector<std::pair<sim::FaultOpClass, uint32_t>> message(
            batched_finishes, {sim::FaultOpClass::kCommitMgrFinish, table});
        message.emplace_back(sim::FaultOpClass::kCommitMgrStart, table);
        d = injector->OnMessage(message);
      } else {
        d = injector->OnRequest(sim::FaultOpClass::kCommitMgrStart, table);
      }
    }
    store::Cluster* cluster = client_->cluster();
    if (d.kill_node >= 0 &&
        d.kill_node < static_cast<int64_t>(cluster->num_nodes())) {
      cluster->node(static_cast<uint32_t>(d.kill_node))->Kill();
    }
    // Leader dies mid-Start: before the request executes (request lost), or
    // — when the same request also drops its response — after it executed,
    // leaving an ambiguous begin the token retry resolves on the successor.
    bool kill_after = d.kill_commit_leader && d.drop_response;
    if (d.kill_commit_leader && !kill_after) manager->Kill();
    if (d.extra_latency_ns > 0) client_->clock()->Advance(d.extra_latency_ns);
    if (d.drop_request) {
      return Status::Unavailable("injected fault: request dropped");
    }
    Result<commitmgr::TxnBeginDelta> result = manager->StartDelta(request);
    if (kill_after) manager->Kill();
    if (d.drop_response) {
      return Status::Unavailable(
          "injected fault: response dropped (ambiguous outcome)");
    }
    return result;
  };

  Result<commitmgr::TxnBeginDelta> result = issue(true);
  const store::RetryPolicy& retry = client_->options().retry;
  for (uint32_t attempt = 1;
       result.status().IsUnavailable() && attempt < retry.max_attempts;
       ++attempt) {
    // Fail-over: PNs "automatically switch to the next one" (§4.4.3) — the
    // round-robin assignment is client-side knowledge, no lookup round trip.
    // A replicated slot elects a successor here; against the SAME slot, the
    // start token keeps a retried begin from leaking a second tid (the new
    // leader replayed the token from the change log).
    commitmgr::CommitManager* next = group_->ManagerFor(pn_id, &election_ns);
    if (election_ns > 0) {
      client_->clock()->Advance(election_ns);
      election_ns = 0;
    }
    if (next == nullptr) break;
    if (next != manager) {
      manager = next;
      fill_ack(manager->manager_id());
    }
    uint64_t backoff = retry.BackoffNs(attempt, &rng_);
    client_->clock()->Advance(backoff);
    client_->metrics()->cm_retries += 1;
    client_->metrics()->retry_backoff_ns += backoff;
    result = issue(false);
  }

  // The message cost is charged once after the loop (the RetryLoop
  // convention: retries pay backoff, not duplicate wire charges).
  std::vector<std::pair<uint64_t, uint64_t>> ops(
      batched_finishes, {kFinishRequestBytes, kFinishResponseBytes});
  ops.emplace_back(kStartRequestBytes,
                   kStartResponseHeaderBytes +
                       (result.ok() ? result->delta.WireBytes() : 0));
  ChargeMessage(ops);

  if (!result.ok()) return result.status();

  const commitmgr::SnapshotDelta& delta = result->delta;
  ManagerCache& cache = cache_[manager->manager_id()];
  cache.snapshot.ApplyDelta(delta);
  cache.generation = delta.generation;
  cache.epoch = delta.epoch;
  sim::WorkerMetrics* m = client_->metrics();
  if (delta.full) {
    m->cm_full_syncs += 1;
  } else {
    m->cm_delta_syncs += 1;
    uint64_t full_bytes = FullWireBytes(cache.snapshot);
    uint64_t delta_bytes = delta.WireBytes();
    if (full_bytes > delta_bytes) {
      m->cm_delta_bytes_saved += full_bytes - delta_bytes;
    }
  }
  last_manager_ = manager;

  commitmgr::TxnBegin begin;
  begin.tid = result->tid;
  begin.snapshot = cache.snapshot;
  begin.lav = result->lav;
  return begin;
}

}  // namespace tell::tx
