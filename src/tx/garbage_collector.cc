#include "tx/garbage_collector.h"

#include "common/serde.h"
#include "schema/tuple.h"
#include "schema/versioned_record.h"

namespace tell::tx {

Result<GcStats> GarbageCollector::SweepTable(store::StorageClient* client,
                                             TableHandle* table) {
  GcStats stats;
  Tid lav = commit_managers_->GlobalLav();
  store::TableId data_table = table->meta->data_table;
  TELL_ASSIGN_OR_RETURN(std::vector<store::KeyCell> cells,
                        client->Scan(data_table, "", "", /*limit=*/0));
  for (const store::KeyCell& cell : cells) {
    if (cell.key.size() != sizeof(uint64_t)) continue;  // meta cells
    auto record = schema::VersionedRecord::Deserialize(cell.value);
    if (!record.ok()) continue;
    uint64_t rid = DecodeOrderedU64(cell.key);

    if (record->DeadAt(lav)) {
      // The record's newest version is a tombstone visible to everyone:
      // remove its index entries, then the record itself.
      auto remove_entries = [&](index::BTree* tree,
                                const schema::IndexDef& def) {
        for (const schema::RecordVersion& version : record->versions()) {
          if (version.tombstone) continue;
          auto tuple = schema::Tuple::Deserialize(table->meta->schema,
                                                  version.payload);
          if (!tuple.ok()) continue;
          auto key = schema::EncodeIndexKey(*tuple, def.key_columns);
          if (!key.ok()) continue;
          if (tree->Remove(client, *key, rid).ok()) {
            ++stats.index_entries_removed;
          }
        }
      };
      remove_entries(&table->primary, table->meta->primary.def);
      for (size_t i = 0; i < table->secondaries.size(); ++i) {
        remove_entries(&table->secondaries[i],
                       table->meta->secondaries[i].def);
      }
      Status st = client->ConditionalErase(data_table, cell.key, cell.stamp);
      if (st.ok()) {
        ++stats.records_erased;
        stats.versions_removed += record->NumVersions();
      }
      continue;  // ConditionFailed: a live writer raced us; next sweep
    }

    size_t removed = record->CollectGarbage(lav);
    if (removed == 0) continue;
    Status st = client
                    ->ConditionalPut(data_table, cell.key, cell.stamp,
                                     record->Serialize())
                    .status();
    if (st.ok()) {
      ++stats.records_rewritten;
      stats.versions_removed += removed;
    }
    // On ConditionFailed a concurrent update already rewrote the record —
    // and performed its own eager GC in the process.
  }
  {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    totals_.Accumulate(stats);
  }
  return stats;
}

Result<GcStats> GarbageCollector::Sweep(
    store::StorageClient* client, const std::vector<TableHandle*>& tables,
    const TransactionLog* log) {
  GcStats total;
  for (TableHandle* table : tables) {
    TELL_ASSIGN_OR_RETURN(GcStats stats, SweepTable(client, table));
    total.records_rewritten += stats.records_rewritten;
    total.versions_removed += stats.versions_removed;
    total.records_erased += stats.records_erased;
    total.index_entries_removed += stats.index_entries_removed;
  }
  if (log != nullptr) {
    Tid lav = commit_managers_->GlobalLav();
    TELL_ASSIGN_OR_RETURN(size_t truncated, log->Truncate(client, lav));
    total.log_entries_truncated = truncated;
    std::lock_guard<std::mutex> lock(totals_mutex_);
    totals_.log_entries_truncated += truncated;
  }
  return total;
}

}  // namespace tell::tx
