#ifndef TELL_TX_CATALOG_H_
#define TELL_TX_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "index/btree.h"
#include "schema/schema.h"
#include "store/storage_node.h"

namespace tell::tx {

/// One index of a table as recorded in the shared catalog: its definition
/// plus the storage table that holds the B+tree nodes.
struct IndexMeta {
  schema::IndexDef def;
  store::TableId store_table = 0;
};

/// Shared (cluster-wide) description of a relational table: schema, the
/// storage table holding the versioned records (keyed by rid), and its
/// indexes. The first index is always the unique primary-key index.
struct TableMeta {
  std::string name;
  schema::Schema schema;
  store::TableId data_table = 0;
  IndexMeta primary;
  std::vector<IndexMeta> secondaries;
  /// Column index whose int value names the table's logical partition for
  /// the single-partition fast path (e.g. the TPC-C warehouse id). -1 =
  /// unpartitioned: the table is shared reference data (readable by fast
  /// transactions, writable only under the global reference fence).
  int32_t partition_column = -1;
};

/// Cluster-wide catalog of tables (paper Fig. 3 "Schema"). Populated at DDL
/// time; read-mostly afterwards.
class Catalog {
 public:
  Status Register(TableMeta meta) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = tables_.emplace(meta.name, std::move(meta));
    if (!inserted) return Status::AlreadyExists("table already in catalog");
    return Status::OK();
  }

  Result<const TableMeta*> Find(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("table '" + std::string(name) + "'");
    }
    return &it->second;
  }

  /// Declares `column` as the partition column of `name` (DDL time, before
  /// concurrent transactions run; -1 clears it back to unpartitioned).
  Status SetPartitionColumn(std::string_view name, int32_t column) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("table '" + std::string(name) + "'");
    }
    if (column >= 0 &&
        static_cast<size_t>(column) >= it->second.schema.columns().size()) {
      return Status::InvalidArgument("partition column out of range");
    }
    it->second.partition_column = column;
    return Status::OK();
  }

  std::vector<const TableMeta*> AllTables() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const TableMeta*> out;
    out.reserve(tables_.size());
    for (const auto& [name, meta] : tables_) out.push_back(&meta);
    return out;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, TableMeta, std::less<>> tables_;
};

/// Per-processing-node view of one table: the shared metadata plus B+tree
/// handles bound to this PN's inner-node caches.
struct TableHandle {
  const TableMeta* meta = nullptr;
  index::BTree primary;
  std::vector<index::BTree> secondaries;

  TableHandle(const TableMeta* m, const index::BTreeOptions& options,
              index::NodeCache* primary_cache,
              const std::vector<index::NodeCache*>& secondary_caches)
      : meta(m), primary(m->primary.store_table, options, primary_cache) {
    secondaries.reserve(m->secondaries.size());
    for (size_t i = 0; i < m->secondaries.size(); ++i) {
      secondaries.emplace_back(m->secondaries[i].store_table, options,
                               secondary_caches[i]);
    }
  }

  /// Appends a B+tree handle for a secondary index added to the catalog
  /// after this handle was built (CREATE INDEX on a live table).
  void AppendSecondary(const index::BTreeOptions& options,
                       index::NodeCache* cache) {
    secondaries.emplace_back(meta->secondaries[secondaries.size()].store_table,
                             options, cache);
  }
};

/// Per-processing-node registry of table handles (owns the node caches).
class TableRegistry {
 public:
  TableRegistry() = default;
  TableRegistry(const TableRegistry&) = delete;
  TableRegistry& operator=(const TableRegistry&) = delete;

  /// Builds a handle for `meta` with fresh per-PN node caches. If the
  /// catalog gained secondary indexes since the handle was built (CREATE
  /// INDEX on a live table), the handle grows matching B+tree bindings.
  /// DDL must not run concurrently with queries on the same table.
  TableHandle* Open(const TableMeta* meta, const index::BTreeOptions& options) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = handles_.find(meta->name);
    if (it != handles_.end()) {
      TableHandle* handle = it->second.get();
      while (handle->secondaries.size() < meta->secondaries.size()) {
        caches_.push_back(std::make_unique<index::NodeCache>());
        handle->AppendSecondary(options, caches_.back().get());
      }
      return handle;
    }
    auto primary_cache = std::make_unique<index::NodeCache>();
    std::vector<index::NodeCache*> secondary_caches;
    std::vector<std::unique_ptr<index::NodeCache>> owned;
    for (size_t i = 0; i < meta->secondaries.size(); ++i) {
      owned.push_back(std::make_unique<index::NodeCache>());
      secondary_caches.push_back(owned.back().get());
    }
    auto handle = std::make_unique<TableHandle>(meta, options,
                                                primary_cache.get(),
                                                secondary_caches);
    caches_.push_back(std::move(primary_cache));
    for (auto& cache : owned) caches_.push_back(std::move(cache));
    TableHandle* raw = handle.get();
    handles_.emplace(meta->name, std::move(handle));
    return raw;
  }

  Result<TableHandle*> Find(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = handles_.find(name);
    if (it == handles_.end()) {
      return Status::NotFound("table '" + std::string(name) +
                              "' not open on this PN");
    }
    return it->second.get();
  }

  std::vector<TableHandle*> AllHandles() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TableHandle*> out;
    for (auto& [name, handle] : handles_) out.push_back(handle.get());
    return out;
  }

  /// Aggregated inner-node cache statistics over every cache this registry
  /// owns (feeds the `index.cache.*` gauges).
  struct CacheStats {
    uint64_t entries = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  CacheStats IndexCacheStats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    CacheStats stats;
    for (const auto& cache : caches_) {
      stats.entries += cache->entries();
      stats.hits += cache->hits();
      stats.misses += cache->misses();
      stats.evictions += cache->evictions();
    }
    return stats;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<TableHandle>, std::less<>> handles_;
  std::vector<std::unique_ptr<index::NodeCache>> caches_;
};

}  // namespace tell::tx

#endif  // TELL_TX_CATALOG_H_
