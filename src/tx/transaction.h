#ifndef TELL_TX_TRANSACTION_H_
#define TELL_TX_TRANSACTION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "commitmgr/commit_manager.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/trace.h"
#include "schema/tuple.h"
#include "schema/versioned_record.h"
#include "store/storage_client.h"
#include "tx/catalog.h"
#include "tx/commit_manager_client.h"
#include "tx/record_buffer.h"
#include "tx/transaction_log.h"

namespace tell::tx {

class FastPathCoordinator;
class Transaction;

struct SessionOptions {
  /// Rids are allocated from a per-table counter in ranges of this size,
  /// cached per session.
  uint32_t rid_range_size = 512;
  /// Delta-encoded snapshot sync with the commit manager: Begin
  /// acknowledges the last received (generation, epoch) and gets only the
  /// base advance + newly completed tids instead of the full bitset (full
  /// resync on first contact or after a manager recovery). Off = every
  /// begin ships the full descriptor (the ablation baseline).
  bool commit_delta = true;
  /// Group begin/finish: setCommitted/setAborted notifications ride in the
  /// same coalesced message as the worker's next begin — one commit-manager
  /// round trip per transaction instead of two. Off = every finish pays its
  /// own round trip.
  bool commit_batching = true;
};

/// Per-worker execution context on a processing node: the storage client
/// (with this worker's virtual clock and metrics), the commit manager
/// binding, the transaction log, the PN's shared record buffer and the rid
/// allocator. One Session per worker thread; not thread safe.
class Session {
 public:
  Session(uint32_t pn_id, uint32_t worker_id, store::Cluster* cluster,
          store::ManagementNode* management,
          const store::ClientOptions& client_options,
          commitmgr::CommitManagerGroup* commit_managers,
          const TransactionLog* log, RecordBuffer* record_buffer,
          const SessionOptions& options = {},
          FastPathCoordinator* fastpath = nullptr)
      : pn_id_(pn_id),
        worker_id_(worker_id),
        client_(cluster, management, client_options, &clock_, &metrics_),
        commit_managers_(commit_managers),
        cm_client_(commit_managers, &client_,
                   {options.commit_delta, options.commit_batching}),
        log_(log),
        record_buffer_(record_buffer),
        options_(options),
        fastpath_(fastpath) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint32_t pn_id() const { return pn_id_; }
  uint32_t worker_id() const { return worker_id_; }
  store::StorageClient* client() { return &client_; }
  sim::VirtualClock* clock() { return &clock_; }
  sim::WorkerMetrics* metrics() { return &metrics_; }
  obs::TxnTracer* tracer() { return &tracer_; }
  const TransactionLog* log() const { return log_; }
  RecordBuffer* record_buffer() { return record_buffer_; }
  commitmgr::CommitManagerGroup* commit_managers() {
    return commit_managers_;
  }
  /// The session's delta-sync/batching window to the commit managers.
  CommitManagerClient* commitmgr_client() { return &cm_client_; }
  /// The PN's phase-switching fast-path coordinator (null = fast path off).
  FastPathCoordinator* fastpath() { return fastpath_; }

  /// Allocates a fresh rid for `table` from the session's cached range.
  Result<uint64_t> AllocateRid(const TableMeta* table);

 private:
  friend class Transaction;

  const uint32_t pn_id_;
  const uint32_t worker_id_;
  sim::VirtualClock clock_;
  sim::WorkerMetrics metrics_;
  /// Phase tracer charging this worker's virtual time to transaction phases
  /// (one histogram sample per phase per transaction; see obs/trace.h).
  obs::TxnTracer tracer_{&clock_, &metrics_};
  store::StorageClient client_;
  commitmgr::CommitManagerGroup* const commit_managers_;
  /// Declared after client_: constructed with it alive, destroyed first
  /// (its destructor charges deferred finish costs through the client).
  CommitManagerClient cm_client_;
  const TransactionLog* const log_;
  RecordBuffer* const record_buffer_;
  const SessionOptions options_;
  FastPathCoordinator* const fastpath_;
  /// Cached rid ranges per data table: (next, end inclusive).
  std::map<store::TableId, std::pair<uint64_t, uint64_t>> rid_ranges_;
};

enum class TxnState { kPending, kRunning, kCommitted, kAborted };

/// Per-transaction options.
struct TxnOptions {
  /// Serializable snapshot isolation (the paper's §4.1 "near future" item,
  /// implemented here): at commit, after the writes are installed, the
  /// read set is re-validated against the store — if any record read (but
  /// not written) by this transaction changed since it was read, the
  /// transaction aborts. This closes SI's write-skew anomaly: of two
  /// transactions with intersecting read/write sets, at most one can pass
  /// validation (writes install before reads validate, so the later
  /// validator observes the earlier installer's write).
  bool serializable = false;
  /// Declared home partition for the single-partition fast path (DESIGN.md
  /// "Phase-switching fast path"): >= 0 routes the transaction onto its
  /// partition's serial fast lane when the session has a coordinator. Every
  /// touched tuple is checked against this value — a touch outside the home
  /// returns CrossPartition and the caller re-runs on the MVCC path. -1 (the
  /// default) = general MVCC execution.
  int64_t home_partition = -1;
};

/// One ACID transaction under distributed snapshot isolation (paper §4).
///
/// Life-cycle (§4.3): Begin (fetch tid/snapshot/lav from the commit
/// manager) -> Running (reads fetch records and cache them in the private
/// transaction buffer; updates are buffered) -> Commit (append the log
/// entry, apply all buffered updates with LL/SC conditional puts — a failed
/// store-conditional is a write-write conflict and aborts the transaction —
/// then update indexes, set the committed flag and notify the commit
/// manager). Manual Abort never touches the store.
class Transaction {
 public:
  explicit Transaction(Session* session, const TxnOptions& options = {});

  /// A still-running transaction aborts on destruction (the commit manager
  /// must learn about every tid, or the snapshot base would stall).
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Contacts the commit manager; must be called exactly once, first.
  Status Begin();

  Tid tid() const { return tid_; }
  Tid lav() const { return lav_; }
  const SnapshotDescriptor& snapshot() const { return snapshot_; }
  TxnState state() const { return state_; }
  /// True when this transaction runs on the single-partition fast lane.
  bool fast() const { return fast_; }
  /// True once a fast transaction hit a cross-partition touch: the next
  /// Abort (explicit or via destructor) counts tx.fastpath.fallbacks
  /// instead of tx.aborted, since the caller re-runs the work on the MVCC
  /// path and the logical transaction is not aborted.
  bool fallback() const { return fallback_; }

  // --- Record operations --------------------------------------------------

  /// Reads the version of record `rid` visible in this snapshot. nullopt if
  /// the record does not exist (or is deleted) in this snapshot.
  Result<std::optional<schema::Tuple>> Read(TableHandle* table, uint64_t rid);

  /// Reads many records; fetches not yet buffered records in one batched
  /// request. Results positionally match `rids`.
  Result<std::vector<std::optional<schema::Tuple>>> BatchRead(
      TableHandle* table, const std::vector<uint64_t>& rids);

  /// Inserts a new record, allocating its rid (returned). With
  /// `check_unique` the primary key is probed first (costs one index
  /// lookup); racing duplicate inserts are additionally caught by the unique
  /// index at commit.
  Result<uint64_t> Insert(TableHandle* table, const schema::Tuple& tuple,
                          bool check_unique = true);

  /// Replaces the record's content (a new version with this transaction's
  /// tid). The record must be visible in this snapshot.
  Status Update(TableHandle* table, uint64_t rid, const schema::Tuple& tuple);

  /// Deletes the record (writes a tombstone version).
  Status Delete(TableHandle* table, uint64_t rid);

  // --- Index operations ---------------------------------------------------

  /// Rid under the primary key, if the record is visible. One index lookup
  /// plus one record fetch (the fetch stays buffered for a following Read).
  Result<std::optional<uint64_t>> LookupPrimary(
      TableHandle* table, const std::vector<schema::Value>& key);

  /// Primary-key lookups for many keys at once, positionally aligned with
  /// `keys`. With request pipelining enabled, the B+tree descents advance
  /// level-synchronously (BTree::BatchLookup) and the candidate records are
  /// prefetched in one batched request, so K lookups cost roughly tree-height
  /// round trips instead of K descents. The fetched records stay buffered
  /// for following Reads.
  Result<std::vector<std::optional<uint64_t>>> BatchLookupPrimary(
      TableHandle* table, const std::vector<std::vector<schema::Value>>& keys);

  /// All visible rids under `key` in the given index (-1 = primary).
  /// Version-unaware index entries are validated against the fetched
  /// records; obsolete entries are garbage collected on the way (§5.4).
  Result<std::vector<uint64_t>> LookupIndex(
      TableHandle* table, int index, const std::vector<schema::Value>& key);

  /// Visible (rid, tuple) pairs with index key in [start, end); empty end =
  /// unbounded. Merges this transaction's own pending inserts.
  Result<std::vector<std::pair<uint64_t, schema::Tuple>>> ScanIndex(
      TableHandle* table, int index, const std::vector<schema::Value>& start,
      const std::vector<schema::Value>& end, size_t limit);

  /// Same, with pre-encoded byte bounds (used by the SQL planner for prefix
  /// and range scans over composite keys).
  Result<std::vector<std::pair<uint64_t, schema::Tuple>>> ScanIndexEncoded(
      TableHandle* table, int index, const std::string& start,
      const std::string& end, size_t limit);

  /// Full-table scan with the predicate pushed down to the storage nodes
  /// (§5.2): only records whose snapshot-visible version satisfies
  /// `predicate` travel over the network — and only their visible payloads,
  /// not the stored version history. Own buffered writes are merged in
  /// afterwards. `limit` (0 = unlimited) stops each partition's scan early;
  /// it is ignored while this transaction holds dirty writes on the table,
  /// because the private overlay could displace server-chosen rows.
  /// Designed for the OLAP side of mixed workloads.
  Result<std::vector<std::pair<uint64_t, schema::Tuple>>> FilteredScan(
      TableHandle* table,
      const std::function<bool(const schema::Tuple&)>& predicate,
      size_t limit = 0);

  /// Snapshot-visibility closure for storage-side scan execution: maps raw
  /// VersionedRecord bytes to the payload of the version visible under this
  /// transaction's snapshot (false when none is live). FilteredScan and the
  /// vectorized fragment path (sql::AggregateFragmentSink) are both built
  /// on it, so chunked scans judge visibility identically to point reads.
  std::function<bool(std::string_view cell_value, std::string* payload)>
  VisibilityClosure() const;

  /// Fans a vectorized scan fragment out to every partition of the table
  /// (DESIGN.md "Vectorized scans & aggregate pushdown") and returns the
  /// per-partition sinks with partial-aggregate states plus the traffic
  /// accounting. `make_sink` builds one sink per partition (and per retry);
  /// `descriptor_bytes` is the serialized fragment size charged per
  /// request. Updates the sql.scan.* worker counters. Fails with
  /// InvalidArgument while the transaction holds dirty writes on the
  /// table (the caller must fall back to the row-shipping path, which
  /// overlays the private buffer); falls back to the MVCC path on fast
  /// transactions like FilteredScan.
  Result<store::FragmentScanOutcome> ExecuteScanFragment(
      TableHandle* table, uint64_t descriptor_bytes,
      const store::FragmentSinkFactory& make_sink);

  /// Whether this transaction has buffered dirty writes on `table` (the
  /// executor's pushdown paths must then ship rows and overlay them).
  bool HasDirtyWrites(const TableHandle* table) const;

  /// Convenience: LookupPrimary + Read.
  Result<std::optional<schema::Tuple>> ReadByKey(
      TableHandle* table, const std::vector<schema::Value>& key);

  /// Rid variant of ReadByKey returning both pieces.
  Result<std::optional<std::pair<uint64_t, schema::Tuple>>> ReadByKeyWithRid(
      TableHandle* table, const std::vector<schema::Value>& key);

  // --- Completion -----------------------------------------------------------

  /// Try-Commit + Commit (§4.3). Returns OK, or Aborted on a write-write
  /// conflict (all partially applied updates rolled back).
  Status Commit();

  /// Manual abort; no updates were applied, only the commit manager is
  /// notified.
  Status Abort();

  /// Number of buffered (dirty) records (tests).
  size_t PendingWrites() const;

 private:
  struct RecordState {
    schema::VersionedRecord record;
    uint64_t stamp = store::kStampAbsent;
    bool exists = false;  // present in the store when fetched
    bool dirty = false;
    bool is_new = false;  // first version written by this transaction
    TableHandle* table = nullptr;
    /// Partitions of every tuple image this transaction wrote for the
    /// record — for an update, BOTH the old and the new image, so a
    /// partition-column change fences the lanes of both the source and the
    /// destination partition at commit (a fast transaction homed on either
    /// may hold the record buffered). Drives which lane fences an MVCC
    /// commit takes shared. Unpartitioned tables (or non-integer partition
    /// values) conservatively take the reference fence exclusive instead.
    std::vector<int64_t> partitions;
    bool unpartitioned = false;
  };

  struct IndexOp {
    index::BTree* tree = nullptr;
    std::string key;
    uint64_t rid = 0;
    bool unique = false;
  };

  using RecordKey = std::pair<store::TableId, uint64_t>;

  /// Fetches (or returns the buffered) record state.
  Result<RecordState*> EnsureFetched(TableHandle* table, uint64_t rid);

  /// The version this transaction reads from `state`: the snapshot-visible
  /// version on the MVCC path; the newest version on the fast path (the
  /// lane fence guarantees every version is settled, and fast tids are
  /// counter-fresh, so an own write is always the newest).
  const schema::RecordVersion* Visible(const RecordState& state) const {
    return fast_ ? state.record.Newest()
                 : state.record.VisibleVersion(snapshot_, tid_);
  }

  /// Fast path: verifies `tuple` lives in the declared home partition.
  /// Reads of unpartitioned (reference) tables pass — they are covered by
  /// the shared reference fence — but writes to them, and any touch of
  /// another partition, mark the transaction for fallback and return
  /// CrossPartition. Fires before any write is visible (fast writes stay
  /// buffered until CommitFast).
  Status CheckFastTuple(TableHandle* table, const schema::Tuple& tuple,
                        bool for_write);

  /// Fast path: leases this transaction's tid on first write.
  Status EnsureFastTid();

  /// Records the partition of a written tuple image in `state`
  /// (accumulating — the MVCC commit fences every recorded lane).
  void RecordPartition(RecordState* state, TableHandle* table,
                       const schema::Tuple& tuple);

  /// Fast-lane commit: one coalesced unconditional write of the dirty
  /// records to the owning storage node, then index maintenance — no log
  /// entry, no LL/SC, no commit-manager round trip (completion rides a
  /// batched message).
  Status CommitFast();

  /// Fills the transaction buffer for `rids` not yet buffered, in one
  /// batched request when the buffering strategy allows it (BatchRead and
  /// BatchLookupPrimary share this).
  Status PrefetchMissing(TableHandle* table, const std::vector<uint64_t>& rids);

  /// Registers index insertions for the new tuple (vs. the previously
  /// visible tuple for updates; `old_tuple` null for inserts).
  Status QueueIndexInserts(TableHandle* table, uint64_t rid,
                           const schema::Tuple& tuple,
                           const schema::Tuple* old_tuple);

  /// Commit step 3: installs index_ops_ into their B-trees. With request
  /// pipelining the ops are grouped per tree (first-appearance order) and
  /// bulk-inserted via BTree::BatchInsert — one coalesced conditional put
  /// per touched leaf instead of one descent + put per entry; without it the
  /// ops run serially. On failure the entries that did make it in are
  /// removed again (Remove is idempotent) before the error is returned.
  Status ApplyIndexInserts();

  /// Rolls back a failed commit attempt: removes this transaction's version
  /// from each dirty record again. Called with the full dirty set (not just
  /// the ops that reported success) so that a conditional put whose response
  /// was lost but that DID apply is reverted too; records without our
  /// version are skipped after one read. Keys whose revert keeps failing on
  /// transient errors are abandoned to lazy GC and counted in
  /// tx.rollback_unresolved.
  /// Returns true if every record was fully reverted (the fast path may
  /// only complete its tid when nothing of it can remain visible).
  bool RollbackApplied(const std::vector<RecordKey>& dirty);

  /// Removes the first `count` entries of index_ops_ from their B-trees
  /// (undo of commit step 3 when a later index insert or the commit flag
  /// write fails).
  void RollbackIndexInserts(size_t count);

  /// Write-write conflict check for scenario 1 of §4.1: fails with Aborted
  /// if the record holds a version that is neither ours nor visible in our
  /// snapshot (a concurrent transaction already applied an update).
  Status CheckWritable(const RecordState& state) const;

  /// Serializable mode: re-reads the stamps of all records in the read set
  /// (fetched but not written). OK if unchanged; Aborted otherwise.
  Status ValidateReadSet();

  /// Validates an index hit: fetches the record, checks some version still
  /// carries `key` (else GCs the entry), and returns the tuple if the
  /// visible version matches the key.
  Result<std::optional<schema::Tuple>> ValidateIndexHit(
      TableHandle* table, index::BTree* tree, const std::string& key,
      uint64_t rid);

  Status FinishCommitEmpty();

  Session* const session_;
  store::StorageClient* const client_;
  obs::TxnTracer* const tracer_;
  const TxnOptions options_;
  TxnState state_ = TxnState::kPending;
  Tid tid_ = 0;
  Tid lav_ = 0;
  SnapshotDescriptor snapshot_;
  commitmgr::CommitManager* commit_manager_ = nullptr;
  /// Fast-path state: lane held exclusively for the transaction's lifetime.
  bool fast_ = false;
  bool fallback_ = false;
  uint32_t lane_ = 0;
  /// Virtual time at fast begin — base of the lane's serial-queue charge.
  uint64_t fast_begin_vns_ = 0;

  std::map<RecordKey, RecordState> buffer_;
  std::vector<IndexOp> index_ops_;
  /// Own pending index inserts, visible to this transaction's lookups:
  /// (index store table, key) -> rids.
  std::map<std::pair<store::TableId, std::string>, std::vector<uint64_t>>
      pending_index_;
};

}  // namespace tell::tx

#endif  // TELL_TX_TRANSACTION_H_
