#ifndef TELL_TX_RECOVERY_H_
#define TELL_TX_RECOVERY_H_

#include <cstdint>

#include "commitmgr/commit_manager.h"
#include "common/result.h"
#include "common/status.h"
#include "store/storage_client.h"
#include "tx/transaction_log.h"

namespace tell::tx {

struct RecoveryStats {
  /// Transactions of the failed PN found uncommitted in the log and rolled
  /// back.
  size_t transactions_rolled_back = 0;
  /// Record versions removed while rolling back.
  size_t versions_removed = 0;
  /// Transactions of the failed PN that never logged (nothing applied);
  /// their tids were completed at the commit managers so the snapshot base
  /// can advance.
  size_t transactions_abandoned = 0;
};

/// The recovery process for processing node failures (paper §4.4.1).
///
/// PNs are crash-stop: when one dies, its committing transactions may have
/// partially applied updates that must be reverted. Recovery discovers the
/// failed node's transactions by walking the transaction log backwards from
/// the highest assigned tid down to the lowest active version number (the
/// lav acts as a rolling checkpoint), reverts the write set of every
/// uncommitted entry belonging to the failed PN (removing the version with
/// number tid from each record), and finally aborts the node's still-active
/// tids at the commit managers. The management node ensures only one
/// recovery process runs at a time; this class is driven by TellDb.
class RecoveryManager {
 public:
  RecoveryManager(const TransactionLog* log,
                  commitmgr::CommitManagerGroup* commit_managers)
      : log_(log), commit_managers_(commit_managers) {}

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Rolls back everything the failed PN left behind. `client` is the
  /// storage client of whatever node runs the recovery (its costs are
  /// charged there). Idempotent: re-running for the same PN is a no-op.
  Result<RecoveryStats> RecoverProcessingNode(store::StorageClient* client,
                                              uint32_t failed_pn);

 private:
  /// Removes version `tid` from the record at (table, rid), retrying LL/SC
  /// failures. Returns true if a version was actually removed.
  bool RevertRecord(store::StorageClient* client, store::TableId table,
                    uint64_t rid, Tid tid);

  const TransactionLog* const log_;
  commitmgr::CommitManagerGroup* const commit_managers_;
};

}  // namespace tell::tx

#endif  // TELL_TX_RECOVERY_H_
