#include "tx/recovery.h"

#include <algorithm>

#include "common/logging.h"
#include "common/serde.h"
#include "schema/versioned_record.h"

namespace tell::tx {

namespace {
constexpr int kMaxRevertRetries = 1024;
}

bool RecoveryManager::RevertRecord(store::StorageClient* client,
                                   store::TableId table, uint64_t rid,
                                   Tid tid) {
  std::string key = EncodeOrderedU64(rid);
  for (int retry = 0; retry < kMaxRevertRetries; ++retry) {
    auto cell = client->Get(table, key);
    if (!cell.ok()) return false;  // record gone
    auto record = schema::VersionedRecord::Deserialize(cell->value);
    if (!record.ok()) {
      TELL_LOG(kWarn) << "recovery: corrupt record " << rid << " in table "
                      << table;
      return false;
    }
    if (!record->RemoveVersion(tid)) return false;  // nothing to revert
    Status st;
    if (record->Empty()) {
      st = client->ConditionalErase(table, key, cell->stamp);
    } else {
      st = client->ConditionalPut(table, key, cell->stamp,
                                  record->Serialize())
               .status();
    }
    if (st.ok()) return true;
    if (!st.IsConditionFailed()) return false;
    // LL/SC race with a live transaction; retry from a fresh read.
  }
  TELL_LOG(kError) << "recovery: revert retries exhausted for rid " << rid;
  return false;
}

Result<RecoveryStats> RecoveryManager::RecoverProcessingNode(
    store::StorageClient* client, uint32_t failed_pn) {
  RecoveryStats stats;

  // Bound the log walk: highest tid handed out anywhere, down to the lav
  // (no transaction below the lav can still be active — rolling checkpoint).
  Tid highest = 0;
  for (uint32_t i = 0; i < commit_managers_->size(); ++i) {
    highest = std::max(highest,
                       commit_managers_->manager(i)->HighestAssignedTid());
  }
  Tid lav = commit_managers_->GlobalLav();

  TELL_ASSIGN_OR_RETURN(std::vector<LogEntry> entries,
                        log_->ScanBackwards(client, highest, lav));
  for (const LogEntry& entry : entries) {
    if (entry.pn_id != failed_pn || entry.committed) continue;
    bool reverted_any = false;
    for (const auto& [table, rid] : entry.write_set) {
      if (RevertRecord(client, table, rid, entry.tid)) {
        ++stats.versions_removed;
        reverted_any = true;
      }
    }
    if (reverted_any) ++stats.transactions_rolled_back;
    // The transaction is finished (aborted) from the system's perspective.
    for (uint32_t i = 0; i < commit_managers_->size(); ++i) {
      if (commit_managers_->manager(i)->alive()) {
        (void)commit_managers_->manager(i)->SetAborted(entry.tid);
      }
    }
  }

  // Transactions that began but never logged: nothing to revert, but their
  // tids must be completed or the snapshot base stalls forever.
  for (uint32_t i = 0; i < commit_managers_->size(); ++i) {
    if (!commit_managers_->manager(i)->alive()) continue;
    std::vector<Tid> abandoned =
        commit_managers_->manager(i)->AbortActiveOf(failed_pn);
    stats.transactions_abandoned += abandoned.size();
  }
  return stats;
}

}  // namespace tell::tx
