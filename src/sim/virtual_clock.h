#ifndef TELL_SIM_VIRTUAL_CLOCK_H_
#define TELL_SIM_VIRTUAL_CLOCK_H_

#include <cstdint>

namespace tell::sim {

/// Per-worker simulated clock.
///
/// The reproduction runs the whole cluster in one process, so the physical
/// network does not exist. Instead, every worker thread (a "terminal" driving
/// transactions on a processing node) owns a VirtualClock and every storage
/// interaction charges its modelled latency here. Reported throughput and
/// response times are computed purely from virtual time, which makes the
/// results independent of the host machine's speed while real thread
/// interleaving still produces genuine conflicts and aborts.
class VirtualClock {
 public:
  VirtualClock() = default;

  /// Current virtual time in nanoseconds since worker start.
  uint64_t now_ns() const { return now_ns_; }

  void Advance(uint64_t delta_ns) { now_ns_ += delta_ns; }

  /// Jumps forward to `t_ns` if it is in the future (waiting in a virtual
  /// queue); never moves backwards.
  void AdvanceTo(uint64_t t_ns) {
    if (t_ns > now_ns_) now_ns_ = t_ns;
  }

  void Reset() { now_ns_ = 0; }

 private:
  uint64_t now_ns_ = 0;
};

}  // namespace tell::sim

#endif  // TELL_SIM_VIRTUAL_CLOCK_H_
