#ifndef TELL_SIM_FAULT_INJECTOR_H_
#define TELL_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"

namespace tell::sim {

/// Classification of a storage request for fault-plan filtering. Mirrors the
/// request types StorageClient issues against the cluster.
enum class FaultOpClass : uint32_t {
  kAny = 0,
  kGet,
  kPut,
  kConditionalPut,
  kErase,
  kConditionalErase,
  kScan,
  kAtomicIncrement,
  /// Commit-manager begin (delta-protocol start, possibly carrying
  /// piggybacked finish notifications in the same coalesced message).
  kCommitMgrStart,
  /// Commit-manager finish notification (setCommitted / setAborted).
  kCommitMgrFinish,
  /// Commit-manager fast-path tid lease (LeaseFastTids).
  kCommitMgrLease,
  /// One-sided (RDMA READ) record fetch. A dropped request or response
  /// models a lost/failed READ completion; the client counts a validation
  /// failure and retries through the two-sided path.
  kOneSidedGet,
};

const char* FaultOpClassName(FaultOpClass op);

/// One rule of a fault plan. A rule observes the stream of storage requests
/// that match its (op, table) filter and fires on some of them:
///
///   * the first `skip_matches` matching requests always pass untouched,
///   * after that, each matching request fires with `probability` (decided
///     by the injector's seeded RNG, so runs are reproducible),
///   * the rule disarms after `max_fires` firings (0 = unlimited).
///
/// What a firing does is `kind`:
///   * kDropRequest   — the request never reaches the storage node; the
///                      caller sees Unavailable and nothing was applied.
///   * kDropResponse  — the request IS executed but the response is lost;
///                      the caller sees Unavailable with an *ambiguous*
///                      outcome (writes may have been applied).
///   * kLatencySpike  — the request succeeds but pays `latency_ns` extra
///                      virtual time (slow link / GC pause on the node).
///   * kKillNode      — crash-stops storage node `node` (crash-stop model;
///                      the management node must fail over). The triggering
///                      request itself then proceeds normally and fails
///                      naturally if it routes to the dead node.
///   * kKillCommitLeader — crash-stops the commit-manager leader the request
///                      was addressed to (docs/RECOVERY.md). Only honored by
///                      commit-manager request paths (begin / finish /
///                      lease); other paths ignore the flag. Alone, the
///                      leader dies BEFORE the request executes (request
///                      lost); combined with kDropResponse firing on the
///                      same request, the request executes first and the
///                      leader dies holding the response (ambiguous — the
///                      idempotency-token retry resolves it on the elected
///                      successor).
struct FaultRule {
  enum class Kind : uint32_t {
    kDropRequest = 0,
    kDropResponse,
    kLatencySpike,
    kKillNode,
    kKillCommitLeader,
  };

  Kind kind = Kind::kDropRequest;
  /// Filter: kAny matches every op class.
  FaultOpClass op = FaultOpClass::kAny;
  /// Filter: 0 matches every table (real table ids start at 1).
  uint32_t table = 0;
  /// Matching requests to let through before the rule arms.
  uint64_t skip_matches = 0;
  /// Probability a matching (armed) request fires. 1.0 = always.
  double probability = 1.0;
  /// Firings before the rule disarms forever. 0 = unlimited.
  uint64_t max_fires = 1;
  /// kLatencySpike: extra virtual ns charged to the requesting worker.
  uint64_t latency_ns = 0;
  /// kKillNode: storage node to crash-stop.
  uint32_t node = 0;

  std::string ToString() const;
};

/// A deterministic fault plan: a seed plus an ordered rule list. Every
/// decision the injector makes derives from `seed`, so a failing chaos run
/// reproduces exactly from its seed.
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultRule> rules;

  /// A randomized chaos plan: a handful of drop-request / drop-response /
  /// latency-spike rules with seeded filters and probabilities, plus (with
  /// `allow_node_kill`) one crash-stop of a storage node in [0, num_nodes).
  /// Same seed -> same plan.
  static FaultPlan Randomized(uint64_t seed, uint32_t num_nodes,
                              bool allow_node_kill);
};

/// Counters of what the injector actually did (exported as `fault.*` gauges
/// by db::TellDb::ExportStats when an injector is attached).
struct FaultStats {
  uint64_t requests_seen = 0;
  uint64_t injected = 0;
  uint64_t dropped_requests = 0;
  uint64_t dropped_responses = 0;
  uint64_t latency_spikes = 0;
  uint64_t node_kills = 0;
  uint64_t leader_kills = 0;
};

/// Deterministic per-request fault injection for the simulated cluster.
///
/// StorageClient consults the injector once per storage request (before the
/// request executes) and applies the returned decision: drop the request,
/// execute it but drop the response (ambiguous outcome), charge a latency
/// spike, and/or crash-stop a node. One injector is shared by all workers of
/// a cluster; decisions are serialized under a mutex so the rule counters
/// and the RNG stream are consistent. Determinism therefore requires a
/// single-threaded driver (the chaos suite runs one worker).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan)
      : plan_(std::move(plan)), rng_(plan_.seed) {
    fired_.assign(plan_.rules.size(), 0);
    matched_.assign(plan_.rules.size(), 0);
  }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// What StorageClient must do for one request. Fields compose: a request
  /// can pay a latency spike and still be dropped.
  struct Decision {
    bool drop_request = false;
    bool drop_response = false;
    uint64_t extra_latency_ns = 0;
    /// >= 0: crash-stop this storage node before issuing the request.
    int64_t kill_node = -1;
    /// Crash-stop the commit-manager leader this request targets (see
    /// FaultRule::Kind::kKillCommitLeader for before/after semantics).
    bool kill_commit_leader = false;
  };

  /// Evaluates the plan against one request. Each matching armed rule rolls
  /// the seeded RNG; the first firing drop rule wins (drop_request beats
  /// drop_response), latency spikes and node kills accumulate alongside.
  Decision OnRequest(FaultOpClass op, uint32_t table);

  /// Evaluates the plan against one *coalesced message* carrying several
  /// logical ops (the request pipeline). The whole message is ONE request to
  /// the injector — exactly what the accounting layer charges: a rule
  /// matches if any contained op matches its filter, match/skip counters
  /// advance once per message, and a firing drop affects every op in the
  /// message. OnRequest is the single-op special case, so un-pipelined
  /// request streams see identical RNG and counter sequences.
  Decision OnMessage(
      const std::vector<std::pair<FaultOpClass, uint32_t>>& ops);

  /// Stops all injection (invariant-checking phase of a chaos run).
  void Disarm();
  /// Re-enables injection after Disarm().
  void Arm();

  FaultStats stats() const;
  const FaultPlan& plan() const { return plan_; }

 private:
  /// Shared rule evaluation; `ops` points at `count` (op, table) pairs all
  /// travelling in the same message. Caller holds `mutex_`.
  Decision Evaluate(const std::pair<FaultOpClass, uint32_t>* ops,
                    size_t count);

  const FaultPlan plan_;
  mutable std::mutex mutex_;
  Random rng_;
  bool armed_ = true;
  std::vector<uint64_t> fired_;    // per-rule firing count
  std::vector<uint64_t> matched_;  // per-rule match count (for skip_matches)
  FaultStats stats_;
};

}  // namespace tell::sim

#endif  // TELL_SIM_FAULT_INJECTOR_H_
