#ifndef TELL_SIM_METRICS_H_
#define TELL_SIM_METRICS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "sim/histogram.h"

namespace tell::sim {

/// The phases of a transaction's life-cycle that the tracer attributes
/// virtual time to (paper §4.3 / Table 4). Each committed or aborted
/// transaction contributes at most one histogram sample per phase: the total
/// virtual time spent in that phase during the transaction.
enum class TxnPhase : uint32_t {
  kBegin = 0,      // commit manager start() round trip
  kIndexLookup,    // B+tree lookups and range scans
  kRead,           // record fetches (buffer probes + storage gets)
  kWrite,          // buffering updates client-side
  kValidate,       // LL/SC apply of the write set (+ serializable read-set
                   // validation)
  kCommit,         // log append, index maintenance, commit flag, manager
                   // notification
  kBufferSync,     // shared-buffer write-through
};

inline constexpr size_t kNumTxnPhases = 7;

inline constexpr std::array<const char*, kNumTxnPhases> kTxnPhaseNames = {
    "begin",  "index_lookup", "read",       "write",
    "validate", "commit",     "buffer_sync",
};

/// Per-worker counters accumulated while driving transactions. Workers each
/// own one (no synchronization); the harness merges them at the end of a run.
///
/// The authoritative list of fields (names, units, help text) lives in the
/// descriptor tables below (WorkerCounterFields / WorkerHistogramFields);
/// Merge and the obs::MetricsRegistry are both driven by those tables, so a
/// new field only needs to be added in two places: the struct and its table
/// row. docs/METRICS.md documents every descriptor (enforced by obs_test).
struct WorkerMetrics {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  /// Committed new-order transactions only (the TpmC numerator).
  uint64_t committed_new_order = 0;
  /// Storage requests issued (after batching).
  uint64_t storage_requests = 0;
  /// Logical storage operations (before batching).
  uint64_t storage_ops = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;
  /// Store-conditional failures observed by this worker (LL/SC conflicts,
  /// including rollback retries).
  uint64_t llsc_failures = 0;
  /// Transaction log entries appended (one per non-empty commit attempt).
  uint64_t log_appends = 0;
  /// B+tree point lookups + range scans issued.
  uint64_t index_lookups = 0;
  /// Record versions removed by eager GC while serializing the write set
  /// (§5.4: "record GC is part of the update process").
  uint64_t eager_gc_versions = 0;
  /// Storage requests re-issued after an Unavailable response (fail-over or
  /// injected fault) by the client's RetryPolicy.
  uint64_t storage_retries = 0;
  /// Requests that stayed Unavailable after the retry budget was spent.
  uint64_t storage_retries_exhausted = 0;
  /// Virtual time spent backing off between retry attempts.
  uint64_t retry_backoff_ns = 0;
  /// Ambiguous conditional writes/erases whose outcome was settled by a
  /// re-read instead of a blind re-issue.
  uint64_t ambiguous_resolved = 0;
  /// Commit rollbacks that abandoned at least one record revert after
  /// exhausting retries (leaves a version for lazy GC to collect).
  uint64_t rollback_unresolved = 0;
  /// Commits whose log commit-flag write failed after retries; the
  /// transaction is rolled back and aborted (the log flag is the source of
  /// truth for commit).
  uint64_t commit_flag_failures = 0;
  /// Index entries removed while rolling back a failed commit.
  uint64_t index_rollbacks = 0;
  /// Request-pipeline flushes that issued at least one coalesced message.
  uint64_t pipeline_flushes = 0;
  /// Virtual time saved by overlapping the requests of a flush versus
  /// issuing them one synchronous round trip at a time.
  uint64_t pipeline_overlap_saved_ns = 0;
  /// Coalesced commit-manager messages sent (a begin plus any piggybacked
  /// finish notifications count as one).
  uint64_t cm_messages = 0;
  /// Logical commit-manager ops (begins + finish notifications) carried in
  /// those messages.
  uint64_t cm_ops = 0;
  /// Request + response bytes of commit-manager messages (incl. framing).
  uint64_t cm_bytes = 0;
  /// Commit-manager begins re-issued after Unavailable (RetryPolicy).
  uint64_t cm_retries = 0;
  /// Begins answered with a delta-encoded snapshot.
  uint64_t cm_delta_syncs = 0;
  /// Begins answered with the full descriptor (first contact, manager
  /// generation change, forced, or delta not smaller).
  uint64_t cm_full_syncs = 0;
  /// Response bytes avoided by delta-encoded snapshots vs shipping the full
  /// descriptor on every begin.
  uint64_t cm_delta_bytes_saved = 0;
  /// Virtual time saved by carrying finish notifications on the next begin
  /// versus paying each op its own round trip.
  uint64_t cm_batch_saved_ns = 0;
  /// Transactions committed on the single-partition fast path (no commit
  /// manager begin, no LL/SC).
  uint64_t fastpath_hits = 0;
  /// Fast-path attempts that touched data outside the declared home
  /// partition and were re-run on the MVCC path.
  uint64_t fastpath_fallbacks = 0;
  /// Lane/reference fence acquisitions that had to wait for the other phase
  /// to drain (fast waiting on MVCC or vice versa).
  uint64_t fastpath_fence_waits = 0;
  /// Fast-tid lease messages sent to the commit manager's tid counter.
  uint64_t fastpath_tid_leases = 0;
  /// Batched fast-commit completion flushes sent to the commit manager.
  uint64_t fastpath_flushes = 0;
  /// Record reads served from the client record cache (lease epochs valid).
  uint64_t cache_hits = 0;
  /// Record reads that missed (or lease-invalidated) the client record cache.
  uint64_t cache_misses = 0;
  /// Reads completed as one-sided (RDMA READ-style) fetches: no storage-node
  /// CPU involved, validated client-side against the partition lease epoch.
  uint64_t onesided_reads = 0;
  /// One-sided fetches whose lease-epoch validation failed (concurrent write
  /// or injected fault); each one fell back to the two-sided path.
  uint64_t onesided_validation_failures = 0;
  /// Reads that fell back to the two-sided RPC path after a one-sided
  /// attempt (validation failure, fault, or unroutable partition).
  uint64_t onesided_fallbacks = 0;
  /// Vectorized scan fragments executed on storage nodes (one per partition
  /// per analytical query lowered to the pushdown path).
  uint64_t scan_fragments = 0;
  /// Cells examined by fragment + pushdown scans on the storage nodes.
  uint64_t scan_rows_scanned = 0;
  /// Rows (matching rows, or aggregate groups) shipped back from fragment +
  /// pushdown scans.
  uint64_t scan_rows_returned = 0;
  /// Response bytes avoided by shipping partial-aggregate states instead of
  /// matching rows (row-shipping baseline minus actual partial-state bytes).
  uint64_t scan_bytes_saved = 0;
  /// Times a chunked fragment scan released every stripe lock mid-partition
  /// (the "never holds a table for a full pass" counter).
  uint64_t scan_chunk_lock_releases = 0;

  /// Transaction response time distribution (virtual ns).
  Histogram response_time;
  /// Logical ops per batched storage request (BatchGet/BatchWrite).
  Histogram batch_size;
  /// Logical ops per coalesced pipeline message (per storage node).
  Histogram pipeline_batch_size;
  /// Ops outstanding in the pipeline when a flush was triggered.
  Histogram pipeline_in_flight;
  /// Logical ops per coalesced commit-manager message.
  Histogram cm_batch_size;
  /// Per-phase virtual time, one sample per transaction per touched phase.
  std::array<Histogram, kNumTxnPhases> phase_ns;

  void Merge(const WorkerMetrics& other);

  double AbortRate() const {
    uint64_t total = committed + aborted;
    return total == 0 ? 0.0 : static_cast<double>(aborted) /
                                  static_cast<double>(total);
  }

  double BufferHitRate() const {
    uint64_t total = buffer_hits + buffer_misses;
    return total == 0 ? 0.0 : static_cast<double>(buffer_hits) /
                                  static_cast<double>(total);
  }
};

/// Descriptor of one WorkerMetrics counter: registry name, unit, help and
/// the member it lives in. The table drives Merge() and the builtin catalog
/// of obs::MetricsRegistry.
struct WorkerCounterField {
  const char* name;
  const char* unit;
  const char* help;
  uint64_t WorkerMetrics::*field;
};

/// Descriptor of one WorkerMetrics histogram. `phase` >= 0 selects
/// phase_ns[phase]; otherwise `member` names the histogram.
struct WorkerHistogramField {
  const char* name;
  const char* unit;
  const char* help;
  Histogram WorkerMetrics::*member;
  int phase;
};

inline const std::vector<WorkerCounterField>& WorkerCounterFields() {
  static const std::vector<WorkerCounterField> kFields = {
      {"tx.committed", "txns", "committed transactions",
       &WorkerMetrics::committed},
      {"tx.aborted", "txns", "aborted transactions", &WorkerMetrics::aborted},
      {"tx.committed_new_order", "txns",
       "committed TPC-C new-order transactions (TpmC numerator)",
       &WorkerMetrics::committed_new_order},
      {"store.requests", "requests", "storage requests (after batching)",
       &WorkerMetrics::storage_requests},
      {"store.ops", "ops", "logical storage operations (before batching)",
       &WorkerMetrics::storage_ops},
      {"net.bytes_sent", "bytes", "request payload + framing bytes sent",
       &WorkerMetrics::bytes_sent},
      {"net.bytes_received", "bytes", "response payload bytes received",
       &WorkerMetrics::bytes_received},
      {"buffer.hits", "reads", "record reads served from a buffer",
       &WorkerMetrics::buffer_hits},
      {"buffer.misses", "reads", "record reads that hit the storage system",
       &WorkerMetrics::buffer_misses},
      {"store.llsc_failures", "ops",
       "store-conditional failures observed client-side",
       &WorkerMetrics::llsc_failures},
      {"txlog.appends", "entries", "transaction log entries appended",
       &WorkerMetrics::log_appends},
      {"index.lookups", "lookups", "B+tree point lookups and range scans",
       &WorkerMetrics::index_lookups},
      {"gc.eager_versions_removed", "versions",
       "record versions removed by eager GC at commit",
       &WorkerMetrics::eager_gc_versions},
      {"store.retries", "requests",
       "storage requests re-issued after Unavailable (RetryPolicy)",
       &WorkerMetrics::storage_retries},
      {"store.retries_exhausted", "requests",
       "requests still Unavailable after the retry budget",
       &WorkerMetrics::storage_retries_exhausted},
      {"store.retry_backoff_ns", "ns",
       "virtual time spent in retry backoff",
       &WorkerMetrics::retry_backoff_ns},
      {"store.ambiguous_resolved", "ops",
       "ambiguous conditional writes settled by re-read",
       &WorkerMetrics::ambiguous_resolved},
      {"tx.rollback_unresolved", "records",
       "record reverts abandoned after retries during commit rollback",
       &WorkerMetrics::rollback_unresolved},
      {"tx.commit_flag_failures", "txns",
       "commits aborted because the log commit flag could not be written",
       &WorkerMetrics::commit_flag_failures},
      {"tx.index_rollbacks", "entries",
       "index entries removed while rolling back a failed commit",
       &WorkerMetrics::index_rollbacks},
      {"store.pipeline.flushes", "flushes",
       "request-pipeline flushes that issued coalesced messages",
       &WorkerMetrics::pipeline_flushes},
      {"store.pipeline.overlap_saved_ns", "ns",
       "virtual time saved by overlapping pipelined requests vs serial issue",
       &WorkerMetrics::pipeline_overlap_saved_ns},
      {"commitmgr.rpc_messages", "messages",
       "coalesced commit-manager messages (begin + piggybacked finishes)",
       &WorkerMetrics::cm_messages},
      {"commitmgr.rpc_ops", "ops",
       "logical commit-manager ops carried in those messages",
       &WorkerMetrics::cm_ops},
      {"commitmgr.rpc_bytes", "bytes",
       "request + response bytes of commit-manager messages",
       &WorkerMetrics::cm_bytes},
      {"commitmgr.retries", "requests",
       "commit-manager begins re-issued after Unavailable",
       &WorkerMetrics::cm_retries},
      {"commitmgr.delta.syncs", "begins",
       "begins answered with a delta-encoded snapshot",
       &WorkerMetrics::cm_delta_syncs},
      {"commitmgr.delta.full_syncs", "begins",
       "begins answered with the full snapshot descriptor",
       &WorkerMetrics::cm_full_syncs},
      {"commitmgr.delta.bytes_saved", "bytes",
       "response bytes avoided by delta-encoded snapshots vs full descriptors",
       &WorkerMetrics::cm_delta_bytes_saved},
      {"commitmgr.batch.saved_ns", "ns",
       "virtual time saved by piggybacking finish notifications on begins",
       &WorkerMetrics::cm_batch_saved_ns},
      {"tx.fastpath.hits", "txns",
       "transactions committed on the single-partition fast path",
       &WorkerMetrics::fastpath_hits},
      {"tx.fastpath.fallbacks", "txns",
       "fast-path attempts re-run on the MVCC path after a cross-partition "
       "touch",
       &WorkerMetrics::fastpath_fallbacks},
      {"tx.fastpath.fence_waits", "acquisitions",
       "phase-fence acquisitions that waited for the other phase to drain",
       &WorkerMetrics::fastpath_fence_waits},
      {"tx.fastpath.tid_leases", "messages",
       "fast-tid lease messages sent to the commit-manager tid counter",
       &WorkerMetrics::fastpath_tid_leases},
      {"tx.fastpath.flushes", "messages",
       "batched fast-commit completion flushes sent to the commit manager",
       &WorkerMetrics::fastpath_flushes},
      {"store.cache.hits", "reads",
       "record reads served from the client record cache",
       &WorkerMetrics::cache_hits},
      {"store.cache.misses", "reads",
       "record reads that missed or were lease-invalidated in the client "
       "record cache",
       &WorkerMetrics::cache_misses},
      {"store.onesided.reads", "reads",
       "reads completed as one-sided (RDMA READ-style) fetches",
       &WorkerMetrics::onesided_reads},
      {"store.onesided.validation_failures", "reads",
       "one-sided fetches whose lease-epoch validation failed",
       &WorkerMetrics::onesided_validation_failures},
      {"store.onesided.fallbacks", "reads",
       "reads that fell back to the two-sided path after a one-sided attempt",
       &WorkerMetrics::onesided_fallbacks},
      {"sql.scan.fragments", "fragments",
       "vectorized scan fragments executed on storage nodes",
       &WorkerMetrics::scan_fragments},
      {"sql.scan.rows_scanned", "rows",
       "cells examined by fragment and pushdown scans",
       &WorkerMetrics::scan_rows_scanned},
      {"sql.scan.rows_returned", "rows",
       "rows or aggregate groups shipped back by fragment and pushdown scans",
       &WorkerMetrics::scan_rows_returned},
      {"sql.scan.bytes_saved", "bytes",
       "response bytes avoided by shipping partial-aggregate states instead "
       "of rows",
       &WorkerMetrics::scan_bytes_saved},
      {"sql.scan.chunk_lock_releases", "releases",
       "stripe-lock releases between chunks of fragment scans",
       &WorkerMetrics::scan_chunk_lock_releases},
  };
  return kFields;
}

inline const std::vector<WorkerHistogramField>& WorkerHistogramFields() {
  static const std::vector<WorkerHistogramField> kFields = [] {
    std::vector<WorkerHistogramField> fields = {
        {"tx.response_time", "ns", "transaction response time (virtual)",
         &WorkerMetrics::response_time, -1},
        {"store.batch_size", "ops", "logical ops per batched storage request",
         &WorkerMetrics::batch_size, -1},
        {"store.pipeline.batch_size", "ops",
         "logical ops per coalesced pipeline message",
         &WorkerMetrics::pipeline_batch_size, -1},
        {"store.pipeline.in_flight", "ops",
         "ops outstanding in the pipeline at flush time",
         &WorkerMetrics::pipeline_in_flight, -1},
        {"commitmgr.batch.size", "ops",
         "logical ops per coalesced commit-manager message",
         &WorkerMetrics::cm_batch_size, -1},
    };
    static const std::array<const char*, kNumTxnPhases> kPhaseMetricNames = {
        "tx.phase.begin",    "tx.phase.index_lookup", "tx.phase.read",
        "tx.phase.write",    "tx.phase.validate",     "tx.phase.commit",
        "tx.phase.buffer_sync",
    };
    static const std::array<const char*, kNumTxnPhases> kPhaseHelp = {
        "virtual time per txn in begin (commit manager start)",
        "virtual time per txn in index lookups/scans",
        "virtual time per txn fetching records",
        "virtual time per txn buffering writes",
        "virtual time per txn in LL/SC apply + read-set validation",
        "virtual time per txn in commit bookkeeping",
        "virtual time per txn in shared-buffer write-through",
    };
    for (size_t p = 0; p < kNumTxnPhases; ++p) {
      fields.push_back({kPhaseMetricNames[p], "ns", kPhaseHelp[p], nullptr,
                        static_cast<int>(p)});
    }
    return fields;
  }();
  return kFields;
}

inline const Histogram& GetWorkerHistogram(const WorkerMetrics& m,
                                           const WorkerHistogramField& f) {
  return f.phase >= 0 ? m.phase_ns[static_cast<size_t>(f.phase)] : m.*f.member;
}

inline Histogram& GetWorkerHistogram(WorkerMetrics& m,
                                     const WorkerHistogramField& f) {
  return f.phase >= 0 ? m.phase_ns[static_cast<size_t>(f.phase)] : m.*f.member;
}

inline void WorkerMetrics::Merge(const WorkerMetrics& other) {
  for (const WorkerCounterField& f : WorkerCounterFields()) {
    this->*f.field += other.*f.field;
  }
  for (const WorkerHistogramField& f : WorkerHistogramFields()) {
    GetWorkerHistogram(*this, f).Merge(GetWorkerHistogram(other, f));
  }
}

}  // namespace tell::sim

#endif  // TELL_SIM_METRICS_H_
