#ifndef TELL_SIM_METRICS_H_
#define TELL_SIM_METRICS_H_

#include <cstdint>

#include "sim/histogram.h"

namespace tell::sim {

/// Per-worker counters accumulated while driving transactions. Workers each
/// own one (no synchronization); the harness merges them at the end of a run.
struct WorkerMetrics {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  /// Committed new-order transactions only (the TpmC numerator).
  uint64_t committed_new_order = 0;
  /// Storage requests issued (after batching).
  uint64_t storage_requests = 0;
  /// Logical storage operations (before batching).
  uint64_t storage_ops = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;
  /// Transaction response time distribution (virtual ns).
  Histogram response_time;

  void Merge(const WorkerMetrics& other) {
    committed += other.committed;
    aborted += other.aborted;
    committed_new_order += other.committed_new_order;
    storage_requests += other.storage_requests;
    storage_ops += other.storage_ops;
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    buffer_hits += other.buffer_hits;
    buffer_misses += other.buffer_misses;
    response_time.Merge(other.response_time);
  }

  double AbortRate() const {
    uint64_t total = committed + aborted;
    return total == 0 ? 0.0 : static_cast<double>(aborted) /
                                  static_cast<double>(total);
  }

  double BufferHitRate() const {
    uint64_t total = buffer_hits + buffer_misses;
    return total == 0 ? 0.0 : static_cast<double>(buffer_hits) /
                                  static_cast<double>(total);
  }
};

}  // namespace tell::sim

#endif  // TELL_SIM_METRICS_H_
