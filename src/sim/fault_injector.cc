#include "sim/fault_injector.h"

namespace tell::sim {

const char* FaultOpClassName(FaultOpClass op) {
  switch (op) {
    case FaultOpClass::kAny: return "any";
    case FaultOpClass::kGet: return "get";
    case FaultOpClass::kPut: return "put";
    case FaultOpClass::kConditionalPut: return "conditional_put";
    case FaultOpClass::kErase: return "erase";
    case FaultOpClass::kConditionalErase: return "conditional_erase";
    case FaultOpClass::kScan: return "scan";
    case FaultOpClass::kAtomicIncrement: return "atomic_increment";
    case FaultOpClass::kCommitMgrStart: return "commitmgr_start";
    case FaultOpClass::kCommitMgrFinish: return "commitmgr_finish";
    case FaultOpClass::kCommitMgrLease: return "commitmgr_lease";
    case FaultOpClass::kOneSidedGet: return "one_sided_get";
  }
  return "unknown";
}

std::string FaultRule::ToString() const {
  static const char* kKindNames[] = {"drop_request", "drop_response",
                                     "latency_spike", "kill_node",
                                     "kill_commit_leader"};
  std::string out = kKindNames[static_cast<uint32_t>(kind)];
  out += "(op=";
  out += FaultOpClassName(op);
  out += " table=" + std::to_string(table);
  out += " skip=" + std::to_string(skip_matches);
  out += " p=" + std::to_string(probability);
  out += " fires=" + std::to_string(max_fires);
  if (kind == Kind::kLatencySpike) {
    out += " latency_ns=" + std::to_string(latency_ns);
  }
  if (kind == Kind::kKillNode) out += " node=" + std::to_string(node);
  out += ")";
  return out;
}

FaultPlan FaultPlan::Randomized(uint64_t seed, uint32_t num_nodes,
                                bool allow_node_kill) {
  FaultPlan plan;
  plan.seed = seed;
  Random rng(seed ^ 0xFA017FA017FA017AULL);

  // A couple of transient drop rules over all tables: low probability per
  // request, bounded total firings so the run always makes progress within
  // the client's retry budget.
  static const FaultOpClass kOps[] = {
      FaultOpClass::kAny, FaultOpClass::kGet, FaultOpClass::kConditionalPut,
      FaultOpClass::kPut, FaultOpClass::kScan};
  uint32_t num_drop_rules = 2 + static_cast<uint32_t>(rng.Uniform(2));
  for (uint32_t i = 0; i < num_drop_rules; ++i) {
    FaultRule rule;
    rule.kind = rng.Bernoulli(0.5) ? FaultRule::Kind::kDropRequest
                                   : FaultRule::Kind::kDropResponse;
    rule.op = kOps[rng.Uniform(sizeof(kOps) / sizeof(kOps[0]))];
    rule.table = 0;  // any table
    rule.skip_matches = rng.Uniform(200);
    rule.probability = 0.01 + rng.NextDouble() * 0.05;
    rule.max_fires = 20 + rng.Uniform(60);
    plan.rules.push_back(rule);
  }

  // One latency-spike rule (slow link / node pause).
  {
    FaultRule rule;
    rule.kind = FaultRule::Kind::kLatencySpike;
    rule.op = FaultOpClass::kAny;
    rule.skip_matches = rng.Uniform(100);
    rule.probability = 0.02 + rng.NextDouble() * 0.05;
    rule.max_fires = 50 + rng.Uniform(100);
    rule.latency_ns = 200'000 + rng.Uniform(2'000'000);
    plan.rules.push_back(rule);
  }

  if (allow_node_kill && num_nodes > 0) {
    FaultRule rule;
    rule.kind = FaultRule::Kind::kKillNode;
    rule.op = FaultOpClass::kAny;
    rule.skip_matches = 100 + rng.Uniform(400);
    rule.probability = 1.0;
    rule.max_fires = 1;
    rule.node = static_cast<uint32_t>(rng.Uniform(num_nodes));
    plan.rules.push_back(rule);
  }
  return plan;
}

FaultInjector::Decision FaultInjector::OnRequest(FaultOpClass op,
                                                 uint32_t table) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::pair<FaultOpClass, uint32_t> one{op, table};
  return Evaluate(&one, 1);
}

FaultInjector::Decision FaultInjector::OnMessage(
    const std::vector<std::pair<FaultOpClass, uint32_t>>& ops) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Evaluate(ops.data(), ops.size());
}

FaultInjector::Decision FaultInjector::Evaluate(
    const std::pair<FaultOpClass, uint32_t>* ops, size_t count) {
  Decision decision;
  if (!armed_ || count == 0) return decision;
  ++stats_.requests_seen;
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    bool matches = false;
    for (size_t k = 0; k < count && !matches; ++k) {
      matches = (rule.op == FaultOpClass::kAny || rule.op == ops[k].first) &&
                (rule.table == 0 || rule.table == ops[k].second);
    }
    if (!matches) continue;
    if (rule.max_fires != 0 && fired_[i] >= rule.max_fires) continue;
    if (matched_[i]++ < rule.skip_matches) continue;
    // The RNG rolls once per armed matching rule — including probability
    // 1.0 rules — so adding a rule never perturbs another rule's stream
    // order within a request.
    if (!rng_.Bernoulli(rule.probability)) continue;
    ++fired_[i];
    ++stats_.injected;
    switch (rule.kind) {
      case FaultRule::Kind::kDropRequest:
        if (!decision.drop_request && !decision.drop_response) {
          decision.drop_request = true;
          ++stats_.dropped_requests;
        }
        break;
      case FaultRule::Kind::kDropResponse:
        if (!decision.drop_request && !decision.drop_response) {
          decision.drop_response = true;
          ++stats_.dropped_responses;
        }
        break;
      case FaultRule::Kind::kLatencySpike:
        decision.extra_latency_ns += rule.latency_ns;
        ++stats_.latency_spikes;
        break;
      case FaultRule::Kind::kKillNode:
        decision.kill_node = rule.node;
        ++stats_.node_kills;
        break;
      case FaultRule::Kind::kKillCommitLeader:
        decision.kill_commit_leader = true;
        ++stats_.leader_kills;
        break;
    }
  }
  return decision;
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
}

void FaultInjector::Arm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = true;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace tell::sim
