#ifndef TELL_SIM_NETWORK_MODEL_H_
#define TELL_SIM_NETWORK_MODEL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tell::sim {

/// Latency/bandwidth cost model of the cluster interconnect.
///
/// The paper's evaluation (§6.6) shows the shared-data architecture lives and
/// dies by network latency: InfiniBand RDMA round trips of a few microseconds
/// give >6x the throughput of 10 Gb Ethernet. We model a storage request as
///
///     cost = base_rtt_ns + software_overhead_ns
///            + (request_bytes + response_bytes) * ns_per_byte
///
/// which captures both the latency floor (dominant for small record ops) and
/// the serialization cost of large transfers (dominant for scans). There is
/// deliberately no congestion/queueing term: load-dependent queueing emerges
/// from the worker interleaving itself, and a modelled term would
/// double-count it.
struct NetworkModel {
  std::string name;
  /// One round trip PN <-> SN (or SN <-> replica), nanoseconds.
  uint64_t base_rtt_ns = 5000;
  /// Serialization cost per payload byte (both directions), nanoseconds.
  double ns_per_byte = 0.2;
  /// Fixed per-request software overhead on top of the wire (stack
  /// traversal; ~0 for RDMA, substantial for kernel TCP).
  uint64_t software_overhead_ns = 0;
  /// Whether the interconnect supports one-sided (RDMA READ) fetches that
  /// bypass the storage node's CPU entirely. Kernel-TCP models cannot: a
  /// read there always traverses the remote software stack, so clients fall
  /// back to the two-sided path.
  bool one_sided_reads = false;
  /// Round trip of a one-sided READ, nanoseconds. Cheaper than base_rtt_ns
  /// because the responder NIC answers from memory without involving its
  /// host CPU or request dispatch loop.
  uint64_t one_sided_rtt_ns = 0;

  bool HasOneSidedReads() const { return one_sided_reads; }

  /// Cost of a one-sided READ fetching `response_bytes` after posting a
  /// `request_bytes` work request. No software_overhead_ns — the whole
  /// point of the one-sided path is that no remote software runs — and the
  /// caller must not charge the storage node CpuModel either.
  uint64_t OneSidedReadCost(uint64_t request_bytes,
                            uint64_t response_bytes) const {
    return one_sided_rtt_ns +
           static_cast<uint64_t>(
               static_cast<double>(request_bytes + response_bytes) *
               ns_per_byte);
  }

  /// Cost of one request/response exchange carrying the given payloads.
  uint64_t RequestCost(uint64_t request_bytes, uint64_t response_bytes) const {
    return base_rtt_ns + software_overhead_ns +
           static_cast<uint64_t>(
               static_cast<double>(request_bytes + response_bytes) *
               ns_per_byte);
  }

  /// Overlap-aware accounting for one coalesced message (request pipelining,
  /// §5.1): N logical ops to the same node share a single round trip —
  /// base_rtt + overhead paid once, plus the serialization cost of all
  /// payloads — instead of N serial RequestCosts. Returns both the shared
  /// message cost and the serial-equivalent cost of issuing the same ops one
  /// round trip at a time, so callers can account the virtual time the
  /// overlap saved.
  struct CoalescedCost {
    uint64_t message_ns = 0;  // what the pipelined message costs
    uint64_t serial_ns = 0;   // what N synchronous requests would have cost
  };
  CoalescedCost CoalescedRequestCost(
      const std::vector<std::pair<uint64_t, uint64_t>>& per_op_bytes,
      uint64_t per_request_framing_bytes) const {
    CoalescedCost cost;
    uint64_t request_bytes = per_request_framing_bytes;
    uint64_t response_bytes = 0;
    for (const auto& [op_request, op_response] : per_op_bytes) {
      cost.serial_ns +=
          RequestCost(op_request + per_request_framing_bytes, op_response);
      request_bytes += op_request;
      response_bytes += op_response;
    }
    cost.message_ns = RequestCost(request_bytes, response_bytes);
    return cost;
  }

  /// 40 Gbit QDR InfiniBand with RDMA (paper testbed): ~5 us round trip,
  /// OS network stack bypassed.
  static NetworkModel InfiniBand() {
    NetworkModel m;
    m.name = "InfiniBand";
    m.base_rtt_ns = 5000;        // ~5 us RDMA round trip
    m.ns_per_byte = 0.2;         // 40 Gbit/s ~ 5 GB/s
    m.software_overhead_ns = 0;  // kernel bypass
    m.one_sided_reads = true;    // RDMA READ, responder CPU bypassed
    m.one_sided_rtt_ns = 2500;   // wire + NIC share of the round trip
    return m;
  }

  /// 10 Gb Ethernet through the kernel TCP stack. The ~60 us effective
  /// round trip DESIGN.md quotes decomposes into the two terms below:
  /// 35 us on the wire + 25 us of kernel/software overhead per request.
  static NetworkModel TenGbEthernet() {
    NetworkModel m;
    m.name = "10GbE";
    m.base_rtt_ns = 35000;           // ~35 us TCP wire round trip
    m.ns_per_byte = 0.8;             // 10 Gbit/s ~ 1.25 GB/s
    m.software_overhead_ns = 25000;  // kernel stack + interrupts
    return m;
  }

  /// Zero-cost network for unit tests that only care about semantics.
  static NetworkModel Instant() {
    NetworkModel m;
    m.name = "instant";
    m.base_rtt_ns = 0;
    m.ns_per_byte = 0.0;
    m.software_overhead_ns = 0;
    // RDMA-capable at zero cost so semantics tests can exercise the
    // one-sided validation protocol without caring about timing.
    m.one_sided_reads = true;
    m.one_sided_rtt_ns = 0;
    return m;
  }
};

/// Modelled CPU costs on the processing node, charged to the worker's
/// virtual clock alongside network costs.
struct CpuModel {
  /// Per storage operation client-side work (marshalling, hashing).
  uint64_t per_op_ns = 300;
  /// Per transaction fixed work (begin/commit bookkeeping, plan dispatch).
  uint64_t per_txn_ns = 10000;
  /// Per record processed by the query executor (predicate eval, copying).
  uint64_t per_record_ns = 150;
  /// SQL text parse + plan cost, charged only when the SQL front-end is used
  /// (the TPC-C benchmark drivers use pre-compiled plans, like VoltDB stored
  /// procedures).
  uint64_t per_parse_ns = 20000;
};

}  // namespace tell::sim

#endif  // TELL_SIM_NETWORK_MODEL_H_
