#ifndef TELL_SIM_HISTOGRAM_H_
#define TELL_SIM_HISTOGRAM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace tell::sim {

/// Log-bucketed latency histogram (RocksDB-statistics style). Records values
/// in nanoseconds; reports mean, standard deviation and percentiles. Not
/// thread safe — each worker keeps its own and they are merged at the end.
class Histogram {
 public:
  Histogram() : buckets_(kNumBuckets, 0) {}

  void Record(uint64_t value_ns) {
    ++count_;
    sum_ += static_cast<double>(value_ns);
    sum_squares_ +=
        static_cast<double>(value_ns) * static_cast<double>(value_ns);
    if (value_ns < min_) min_ = value_ns;
    if (value_ns > max_) max_ = value_ns;
    ++buckets_[BucketFor(value_ns)];
  }

  void Merge(const Histogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    sum_squares_ += other.sum_squares_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  }

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }

  double Mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  double StdDev() const {
    if (count_ < 2) return 0.0;
    double n = static_cast<double>(count_);
    double variance = (sum_squares_ - sum_ * sum_ / n) / (n - 1);
    return variance > 0 ? std::sqrt(variance) : 0.0;
  }

  /// Approximate percentile (p in [0,100]) using the bucket midpoint.
  uint64_t Percentile(double p) const {
    if (count_ == 0) return 0;
    uint64_t threshold =
        static_cast<uint64_t>(std::ceil(static_cast<double>(count_) * p / 100.0));
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      cumulative += buckets_[i];
      if (cumulative >= threshold) return BucketMidpoint(i);
    }
    return max_;
  }

  void Reset() {
    count_ = 0;
    sum_ = 0;
    sum_squares_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
    buckets_.assign(kNumBuckets, 0);
  }

 private:
  // Buckets: [0,1), then geometric with ratio 2^(1/4) — 4 buckets per
  // doubling gives ~19% relative error, plenty for percentile reporting.
  static constexpr size_t kNumBuckets = 256;

  static size_t BucketFor(uint64_t v) {
    if (v < 1) return 0;
    double idx = std::log2(static_cast<double>(v)) * 4.0;
    size_t b = static_cast<size_t>(idx) + 1;
    return b >= kNumBuckets ? kNumBuckets - 1 : b;
  }

  static uint64_t BucketMidpoint(size_t b) {
    if (b == 0) return 0;
    double lo = std::exp2(static_cast<double>(b - 1) / 4.0);
    double hi = std::exp2(static_cast<double>(b) / 4.0);
    return static_cast<uint64_t>((lo + hi) / 2.0);
  }

  uint64_t count_ = 0;
  double sum_ = 0;
  double sum_squares_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
  std::vector<uint64_t> buckets_;
};

}  // namespace tell::sim

#endif  // TELL_SIM_HISTOGRAM_H_
