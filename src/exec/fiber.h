#ifndef TELL_EXEC_FIBER_H_
#define TELL_EXEC_FIBER_H_

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace tell::exec {

/// A stackful coroutine: the unit of suspension under exec::Runtime.
///
/// A fiber runs an arbitrary `std::function<void()>` on its own stack and
/// can suspend itself from ANY call depth with Fiber::Yield() — that is
/// what lets the whole existing Transaction/TpccExecutor call stack park on
/// an unready Future without being rewritten in continuation-passing style.
/// Resume() runs the fiber on the calling thread until it yields or the
/// body returns.
///
/// Threading contract: a fiber is resumed by one thread at a time but MAY
/// migrate between resumes (work stealing moves parked tasks across
/// executor threads). The scheduler's queue lock provides the
/// happens-before edge between the yielding thread and the resuming one.
/// Under ThreadSanitizer the context switches are annotated with the TSan
/// fiber API so cross-thread migration is understood by the race detector.
class Fiber {
 public:
  /// `stack_bytes` must comfortably hold the deepest call chain the body
  /// reaches (the TPC-C executor stays well under the 256 KiB default).
  explicit Fiber(std::function<void()> body, size_t stack_bytes = 256 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Runs the fiber on the calling thread until it yields or finishes.
  /// Returns true when the body has returned (the fiber must not be
  /// resumed again).
  bool Resume();

  /// Suspends the fiber currently running on this thread, returning
  /// control to its Resume() caller. Must be called from inside a fiber.
  static void Yield();

  /// The fiber currently executing on this thread, or nullptr.
  static Fiber* Current();

  bool finished() const { return finished_; }

 private:
  static void Trampoline();
  void SwitchOut();

  std::function<void()> body_;
  std::unique_ptr<char[]> stack_;
  size_t stack_bytes_;
  ucontext_t ctx_{};     // the fiber's own context
  ucontext_t return_{};  // where Resume() was called from
  bool started_ = false;
  bool finished_ = false;
  void* tsan_fiber_ = nullptr;   // TSan fiber handle (tsan builds only)
  void* tsan_parent_ = nullptr;  // resumer's TSan fiber, valid during a run
};

}  // namespace tell::exec

#endif  // TELL_EXEC_FIBER_H_
