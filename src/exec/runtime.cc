#include "exec/runtime.h"

#include <chrono>

#include "common/exec_hooks.h"
#include "common/logging.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace tell::exec {

/// A submitted task: just a fiber. The scheduler owns the allocation and
/// frees it when the body returns.
struct Runtime::Task {
  Task(std::function<void()> body, size_t stack_bytes, bool pinned)
      : fiber(std::move(body), stack_bytes), pinned(pinned) {}
  Fiber fiber;
  /// Pinned tasks stay on their submit queue: thieves skip them, so the
  /// task only ever runs on its home core (see Submit with queue_hint).
  const bool pinned;
};

/// One run queue. The owning worker pops from the front (FIFO — this is
/// what makes the single-thread configuration deterministic); thieves take
/// from the back, so the oldest waiting task migrates first.
struct Runtime::Core {
  std::deque<Task*> queue;
};

Runtime::Runtime(RuntimeOptions options) : options_(options) {
  TELL_CHECK(options_.threads >= 1);
  stats_.cores.resize(options_.threads);
  stats_.threads = options_.threads;
  cores_.reserve(options_.threads);
  for (uint32_t i = 0; i < options_.threads; ++i) {
    cores_.push_back(std::make_unique<Core>());
  }
}

Runtime::~Runtime() {
  for (const std::unique_ptr<Core>& core : cores_) {
    for (Task* task : core->queue) delete task;  // Run() never happened
  }
}

void Runtime::Submit(std::function<void()> body) {
  Task* task = new Task(std::move(body), options_.stack_bytes,
                        /*pinned=*/false);
  std::lock_guard<std::mutex> lock(mutex_);
  TELL_CHECK(!done_);
  const uint32_t target = next_queue_;
  next_queue_ = (next_queue_ + 1) % static_cast<uint32_t>(cores_.size());
  EnqueueLocked(task, target);
}

void Runtime::Submit(std::function<void()> body, uint64_t queue_hint) {
  Task* task = new Task(std::move(body), options_.stack_bytes,
                        /*pinned=*/true);
  std::lock_guard<std::mutex> lock(mutex_);
  TELL_CHECK(!done_);
  EnqueueLocked(task,
                static_cast<uint32_t>(queue_hint % cores_.size()));
}

void Runtime::EnqueueLocked(Task* task, uint32_t target) {
  cores_[target]->queue.push_back(task);
  ++queued_;
  RuntimeStats::PerCore& cs = stats_.cores[target];
  cs.queue_peak = std::max(cs.queue_peak,
                           static_cast<uint64_t>(cores_[target]->queue.size()));
  if (parked_ > 0) {
    ++cs.unparks;
    if (task->pinned) {
      // A pinned task runs only on its home core, but notify_one may land on
      // a core that skips it in the steal loop, finds nothing and re-parks —
      // consuming the wakeup while the home core stays parked, stranding the
      // task. Wake everyone; non-home cores simply re-park.
      work_cv_.notify_all();
    } else {
      work_cv_.notify_one();
    }
  }
}

bool Runtime::InTask() { return Fiber::Current() != nullptr; }

void Runtime::Yield() {
  if (Fiber::Current() != nullptr) Fiber::Yield();
}

Runtime::Task* Runtime::FindWork(uint32_t core_id,
                                 std::unique_lock<std::mutex>& lock) {
  for (;;) {
    if (done_) return nullptr;
    Core& own = *cores_[core_id];
    if (!own.queue.empty()) {
      Task* task = own.queue.front();
      own.queue.pop_front();
      --queued_;
      return task;
    }
    for (uint32_t j = 1; j < cores_.size(); ++j) {
      Core& victim = *cores_[(core_id + j) % cores_.size()];
      // Oldest-first from the back, skipping pinned tasks: those may only
      // run on their home core (its own front-pop finds them; a core never
      // parks while its queue is non-empty, so they cannot be stranded).
      for (auto it = victim.queue.rbegin(); it != victim.queue.rend(); ++it) {
        if ((*it)->pinned) continue;
        Task* task = *it;
        victim.queue.erase(std::next(it).base());
        --queued_;
        ++stats_.cores[core_id].steals;
        return task;
      }
    }
    // Nothing queued anywhere. If nothing is running either, the run is
    // over (running tasks may still Submit or yield, so both must be
    // zero); otherwise park until an enqueue wakes us.
    if (queued_ == 0 && running_ == 0) {
      done_ = true;
      work_cv_.notify_all();
      return nullptr;
    }
    ++stats_.cores[core_id].parks;
    ++parked_;
    work_cv_.wait(lock);
    --parked_;
  }
}

void Runtime::WorkerLoop(uint32_t core_id) {
#ifdef __linux__
  if (options_.pin_cores) {
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(core_id % hw, &set);
      (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
    }
  }
#endif
  // Park point for Future::Await / the commit-manager client: yield the
  // current fiber. Installed for the whole scheduling loop; it is a no-op
  // unless a fiber is actually running on this thread.
  exec_hooks::g_task_hook = {+[](void*) { Runtime::Yield(); }, nullptr};

  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    Task* task = FindWork(core_id, lock);
    if (task == nullptr) break;
    ++running_;
    lock.unlock();
    const auto start = std::chrono::steady_clock::now();
    const bool finished = task->fiber.Resume();
    const uint64_t busy_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    lock.lock();
    --running_;
    RuntimeStats::PerCore& cs = stats_.cores[core_id];
    cs.busy_ns += busy_ns;
    if (finished) {
      ++cs.tasks_completed;
      delete task;
      if (queued_ == 0 && running_ == 0) {
        done_ = true;
        work_cv_.notify_all();
      }
    } else {
      // The task yielded (parked on a future): back of our own queue, so
      // every other runnable task on this core gets a slice first.
      ++cs.yields;
      Core& own = *cores_[core_id];
      own.queue.push_back(task);
      ++queued_;
      cs.queue_peak =
          std::max(cs.queue_peak, static_cast<uint64_t>(own.queue.size()));
      if (parked_ > 0) {
        ++cs.unparks;
        work_cv_.notify_one();
      }
    }
  }
  lock.unlock();
  exec_hooks::g_task_hook = {};
}

void Runtime::Run() {
  TELL_CHECK(!ran_);  // one-shot
  ran_ = true;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(options_.threads);
  for (uint32_t i = 0; i < options_.threads; ++i) {
    threads.emplace_back(&Runtime::WorkerLoop, this, i);
  }
  for (std::thread& thread : threads) thread.join();
  stats_.wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

void ExportStats(const RuntimeStats& stats, obs::MetricsRegistry* registry) {
  using PerCore = RuntimeStats::PerCore;
  registry->SetGauge("exec.threads", stats.threads);
  registry->SetGauge("exec.tasks", stats.Total(&PerCore::tasks_completed));
  registry->SetGauge("exec.yields", stats.Total(&PerCore::yields));
  registry->SetGauge("exec.steals", stats.Total(&PerCore::steals));
  registry->SetGauge("exec.parks", stats.Total(&PerCore::parks));
  registry->SetGauge("exec.unparks", stats.Total(&PerCore::unparks));
  registry->SetGauge("exec.run_queue_peak", stats.QueuePeak());
  registry->SetGauge("exec.busy_ns", stats.Total(&PerCore::busy_ns));
  registry->SetGauge("exec.wall_ns", stats.wall_ns);
}

std::vector<std::pair<std::string, std::vector<std::pair<std::string,
                                                         uint64_t>>>>
PerCoreRows(const RuntimeStats& stats) {
  std::vector<std::pair<std::string, std::vector<std::pair<std::string,
                                                           uint64_t>>>> rows;
  rows.reserve(stats.cores.size());
  for (size_t i = 0; i < stats.cores.size(); ++i) {
    const RuntimeStats::PerCore& c = stats.cores[i];
    rows.emplace_back(
        "exec" + std::to_string(i),
        std::vector<std::pair<std::string, uint64_t>>{
            {"tasks_completed", c.tasks_completed},
            {"steals", c.steals},
            {"yields", c.yields},
            {"parks", c.parks},
            {"unparks", c.unparks},
            {"busy_ns", c.busy_ns},
            {"queue_peak", c.queue_peak},
        });
  }
  return rows;
}

}  // namespace tell::exec
