#include "exec/fiber.h"

#include "common/logging.h"

// TSan needs to be told about user-level context switches, otherwise every
// datum touched from two different fibers scheduled on two different OS
// threads looks like a race. GCC defines __SANITIZE_THREAD__; clang exposes
// __has_feature(thread_sanitizer). Both ship <sanitizer/tsan_interface.h>.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TELL_TSAN_FIBERS 1
#endif
#endif
#if !defined(TELL_TSAN_FIBERS) && defined(__SANITIZE_THREAD__)
#define TELL_TSAN_FIBERS 1
#endif
#ifdef TELL_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace tell::exec {

namespace {
/// The fiber executing on this OS thread right now (nullptr between
/// fibers). Also the handoff slot for Trampoline(): Resume() publishes
/// `this` here before the first context switch.
thread_local Fiber* t_current = nullptr;
}  // namespace

Fiber::Fiber(std::function<void()> body, size_t stack_bytes)
    : body_(std::move(body)),
      stack_(new char[stack_bytes]),
      stack_bytes_(stack_bytes) {
#ifdef TELL_TSAN_FIBERS
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
  TELL_CHECK(!started_ || finished_);
#ifdef TELL_TSAN_FIBERS
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

Fiber* Fiber::Current() { return t_current; }

void Fiber::Trampoline() {
  Fiber* self = t_current;
  self->body_();
  self->finished_ = true;
  // Hand control back to the last Resume() caller. The context must never
  // fall off the end of Trampoline (uc_link is null), so this switch is
  // the only way out.
  self->SwitchOut();
  TELL_CHECK(false);  // a finished fiber must not be resumed
}

bool Fiber::Resume() {
  TELL_CHECK(!finished_);
  TELL_CHECK(t_current == nullptr);  // no nested fibers
  if (!started_) {
    started_ = true;
    TELL_CHECK(getcontext(&ctx_) == 0);
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = nullptr;
    makecontext(&ctx_, &Fiber::Trampoline, 0);
  }
  t_current = this;
#ifdef TELL_TSAN_FIBERS
  tsan_parent_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  TELL_CHECK(swapcontext(&return_, &ctx_) == 0);
  // Back here after SwitchOut (yield or completion).
  t_current = nullptr;
  return finished_;
}

void Fiber::SwitchOut() {
#ifdef TELL_TSAN_FIBERS
  __tsan_switch_to_fiber(tsan_parent_, 0);
#endif
  TELL_CHECK(swapcontext(&ctx_, &return_) == 0);
}

void Fiber::Yield() {
  Fiber* self = t_current;
  TELL_CHECK(self != nullptr);  // Yield outside a fiber is a bug
  self->SwitchOut();
}

}  // namespace tell::exec
