#ifndef TELL_EXEC_RUNTIME_H_
#define TELL_EXEC_RUNTIME_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/fiber.h"
#include "obs/metrics_registry.h"

namespace tell::exec {

struct RuntimeOptions {
  /// Executor threads ("cores"). 1 gives a deterministic cooperative FIFO
  /// scheduler: tasks run and resume in submission/yield order with no
  /// stealing, so seeded runs are bit-identical (RUNTIME.md, "Determinism
  /// contract").
  uint32_t threads = 1;
  /// Pin executor thread i to hardware core i % hardware_concurrency().
  /// Pinning keeps a task's cache-warm state on one core between yields
  /// unless stealing moves it; disable for shared hosts where the pin set
  /// fights other tenants.
  bool pin_cores = true;
  /// Stack per task fiber. The TPC-C executor path stays well under the
  /// default; raise it for deeper workloads.
  size_t stack_bytes = 256 * 1024;
};

/// Scheduler counters, one row per executor thread plus run-wide wall time.
/// Exported into the metrics registry as the `exec.*` gauges (summed) by
/// ExportStats, and into bench artifacts as per-core `exec<i>` node rows by
/// PerCoreRows.
struct RuntimeStats {
  struct PerCore {
    uint64_t tasks_completed = 0;
    uint64_t steals = 0;       // tasks this core pulled from another queue
    uint64_t yields = 0;       // task suspensions (park on a future, etc.)
    uint64_t parks = 0;        // times this worker slept on an empty queue
    uint64_t unparks = 0;      // wakeups this worker issued to sleepers
    uint64_t busy_ns = 0;      // wall time inside task code
    uint64_t queue_peak = 0;   // peak run-queue depth
  };
  std::vector<PerCore> cores;
  uint32_t threads = 0;
  uint64_t wall_ns = 0;  // wall time of Run()

  uint64_t Total(uint64_t PerCore::* field) const {
    uint64_t sum = 0;
    for (const PerCore& c : cores) sum += c.*field;
    return sum;
  }
  uint64_t QueuePeak() const {
    uint64_t peak = 0;
    for (const PerCore& c : cores) peak = std::max(peak, c.queue_peak);
    return peak;
  }
};

/// Thread-per-core executor for processing-node workers (ROADMAP open item
/// "Thread-per-core execution runtime").
///
/// A fixed pool of (optionally core-pinned) executor threads multiplexes
/// many transaction tasks: each task is a Fiber, each thread owns a run
/// queue, idle threads steal from their neighbours, and a task that is
/// about to wait on modelled network time — a pipeline flush in
/// `Future::Await`, a commit-manager begin — yields its core instead of
/// blocking, so thousands of in-flight transactions share N cores. The
/// park/resume protocol lives in common/exec_hooks.h; the programming
/// model, including what task code may and may not do, is documented in
/// docs/RUNTIME.md.
///
/// Lifecycle: construct, Submit() any number of tasks (also legal from
/// inside a running task), Run() to completion, read stats(). One-shot: a
/// Runtime is not reusable after Run() returns.
class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Enqueues a task (round-robin over the run queues). Thread-safe;
  /// callable before Run() and from inside tasks while Run() is live.
  void Submit(std::function<void()> body);

  /// Enqueues a task PINNED to run queue `queue_hint % threads`: thieves
  /// skip it, so it only ever runs on that core. Used for home-partition
  /// affinity (all fast-path tasks of one partition share a core, so its
  /// serial lane never bounces between caches). Pinning trades load balance
  /// for locality — skewed hints leave cores idle.
  void Submit(std::function<void()> body, uint64_t queue_hint);

  /// Runs every submitted task to completion. Blocks the caller; the
  /// executor threads are spawned here and joined before returning.
  void Run();

  /// Scheduler counters; stable once Run() has returned.
  const RuntimeStats& stats() const { return stats_; }

  const RuntimeOptions& options() const { return options_; }

  /// True when the calling thread is an executor thread inside a task.
  static bool InTask();

  /// Cooperative reschedule from inside a task: the task goes to the back
  /// of its queue and the core runs someone else. No-op outside a task (so
  /// shared driver code works under both the executor and legacy threads).
  static void Yield();

 private:
  struct Task;
  struct Core;

  void WorkerLoop(uint32_t core_id);
  Task* FindWork(uint32_t core_id, std::unique_lock<std::mutex>& lock);
  void EnqueueLocked(Task* task, uint32_t target);

  const RuntimeOptions options_;
  RuntimeStats stats_;

  /// One lock for every queue: queue operations are short (pointer pushes)
  /// next to task slices (whole transaction phases), so a single lock keeps
  /// the park/unpark protocol trivially free of lost wakeups. The per-core
  /// queues still shape locality and make stealing observable.
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::vector<std::unique_ptr<Core>> cores_;
  uint32_t next_queue_ = 0;   // round-robin Submit target
  uint32_t running_ = 0;      // tasks currently inside Resume()
  uint32_t parked_ = 0;       // workers asleep on work_cv_
  uint64_t queued_ = 0;       // tasks sitting in run queues
  bool done_ = false;
  bool ran_ = false;
};

/// Sets the `exec.*` gauges (docs/METRICS.md, "Executor scheduler gauges")
/// from a finished run's stats.
void ExportStats(const RuntimeStats& stats, obs::MetricsRegistry* registry);

/// Per-core breakdown in the bench artifact's `nodes` shape: one `exec<i>`
/// row per executor thread.
std::vector<std::pair<std::string, std::vector<std::pair<std::string,
                                                         uint64_t>>>>
PerCoreRows(const RuntimeStats& stats);

}  // namespace tell::exec

#endif  // TELL_EXEC_RUNTIME_H_
