#ifndef TELL_STORE_RETRY_POLICY_H_
#define TELL_STORE_RETRY_POLICY_H_

#include <cstdint>

#include "common/random.h"

namespace tell::store {

/// The one retry/backoff policy every StorageClient path uses when a storage
/// request fails with Unavailable (node crash, fail-over in progress, or an
/// injected fault). Replaces the former scattered "one retry after
/// fail-over" pattern.
///
/// Attempts are bounded; between attempts the worker backs off in *virtual*
/// time (exponential with full jitter drawn from the client's seeded RNG, so
/// runs stay reproducible). Whether a failed attempt may simply be
/// re-issued depends on the op class: reads, scans and unconditional writes
/// are idempotent; conditional writes with a lost response are *ambiguous*
/// (the write may have applied) and are re-read before re-issuing — see
/// StorageClient's resolution logic.
struct RetryPolicy {
  /// Total attempts, including the first (1 = never retry).
  uint32_t max_attempts = 4;
  /// Backoff before the first retry, virtual ns.
  uint64_t initial_backoff_ns = 200'000;  // 0.2 ms
  /// Exponential growth factor per retry.
  double multiplier = 2.0;
  /// Backoff ceiling, virtual ns.
  uint64_t max_backoff_ns = 10'000'000;  // 10 ms
  /// Jitter: the charged backoff is uniform in
  /// [(1 - jitter) * b, b] for computed backoff b. 0 = deterministic b.
  double jitter = 0.5;

  /// Backoff (virtual ns) to charge before retry number `retry` (1-based),
  /// with jitter drawn from `rng`. Saturates at max_backoff_ns for any
  /// attempt count: the growth loop stops as soon as the ceiling is reached,
  /// so a caller spinning at attempt 2^30 neither walks the multiplier a
  /// billion times nor overflows the double into inf/garbage delays.
  uint64_t BackoffNs(uint32_t retry, Random* rng) const {
    const double cap = static_cast<double>(max_backoff_ns);
    double b = static_cast<double>(initial_backoff_ns);
    if (multiplier > 1.0) {
      for (uint32_t i = 1; i < retry && b < cap; ++i) b *= multiplier;
    }
    if (b > cap) b = cap;
    double lo = b * (1.0 - jitter);
    return static_cast<uint64_t>(lo + (b - lo) * rng->NextDouble());
  }
};

}  // namespace tell::store

#endif  // TELL_STORE_RETRY_POLICY_H_
