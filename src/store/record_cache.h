#ifndef TELL_STORE_RECORD_CACHE_H_
#define TELL_STORE_RECORD_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "store/versioned_cell.h"

namespace tell::store {

using TableId = uint32_t;

/// Per-partition lease epochs — the invalidation protocol of the client-side
/// record cache (DESIGN.md "One-sided reads & client caching").
///
/// Every storage-node write to a partition bumps that partition's epoch
/// *inside the write's stripe-exclusive critical section, after the cell
/// mutation*. A cache fill samples the epoch *before* issuing its fetch and
/// tags the entry with it; a probe re-samples and treats any difference as
/// an invalidation. The ordering makes the lease sound:
///
///   * The fetch linearizes at some t_fetch at or after the sample. Any
///     write that makes the store differ from the fetched value linearizes
///     after t_fetch, and its bump (same critical section, after the
///     mutation) is therefore observed by every later probe — the stale
///     entry can never be served.
///   * Conversely, a fill whose sample already includes a write's bump
///     fetches at or after that write's mutation, so the cached bytes are
///     the post-write bytes.
///
/// Hence: epoch unchanged since fill  ⟹  cached bytes == a fresh fetch.
/// Cached reads are byte-identical to uncached ones, which is what lets the
/// TPC-C digest tests demand bit-identical final state cache-on vs cache-off.
///
/// Epochs live in a fixed open-addressed array indexed by a hash of
/// (table, partition). Collisions only merge two partitions' epochs —
/// spurious invalidation, never a missed one — so the table needs no
/// resizing or locking.
class LeaseEpochTable {
 public:
  LeaseEpochTable() = default;
  LeaseEpochTable(const LeaseEpochTable&) = delete;
  LeaseEpochTable& operator=(const LeaseEpochTable&) = delete;

  uint64_t Epoch(TableId table, uint32_t partition) const {
    return epochs_[SlotOf(table, partition)].load(std::memory_order_acquire);
  }

  /// Called by storage nodes after every cell mutation, while the write's
  /// stripe lock is still held. A no-op while frozen (tests only).
  void Bump(TableId table, uint32_t partition) {
    if (frozen_.load(std::memory_order_relaxed)) return;
    epochs_[SlotOf(table, partition)].fetch_add(1, std::memory_order_acq_rel);
  }

  /// Test-only fault: suppress all bumps, simulating a storage node that
  /// "forgets" lease invalidation. The coherence mutation test flips this
  /// on and checks that the digest harness catches the resulting staleness.
  void set_frozen_for_testing(bool frozen) {
    frozen_.store(frozen, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kSlots = 4096;  // power of two

  static size_t SlotOf(TableId table, uint32_t partition) {
    // 64-bit mix (splitmix64 finalizer) of the packed (table, partition).
    uint64_t x = (static_cast<uint64_t>(table) << 32) | partition;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x & (kSlots - 1));
  }

  std::atomic<uint64_t> epochs_[kSlots] = {};
  std::atomic<bool> frozen_{false};
};

struct RecordCacheOptions {
  /// Off by default: existing configurations keep their exact behaviour and
  /// cost accounting unless they opt in.
  bool enabled = false;
  /// Total entry budget across all stripes (LRU per stripe).
  size_t max_entries = 4096;
  /// Lock stripes; rounded up to a power of two.
  uint32_t stripes = 16;
};

/// Point-in-time copy of a cache's counters (exported as the
/// `store.cache.*` gauges; hit/miss totals also feed the per-worker
/// `store.cache.hits`/`store.cache.misses` counters via StorageClient).
struct RecordCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  uint64_t entries = 0;
};

/// Per-processing-node shared cache of versioned cells, holding both data
/// records and B-tree leaf nodes (everything a StorageClient Get returns).
/// Striped and bounded: each stripe is an independently mutex-locked hash
/// map with its own LRU list. Coherence comes entirely from LeaseEpochTable
/// epochs — an entry is served only while its partition's epoch still equals
/// the epoch sampled before the fill, so a hit is byte-identical to a fresh
/// fetch (see LeaseEpochTable above for the proof sketch).
class RecordCache {
 public:
  explicit RecordCache(const RecordCacheOptions& options);
  RecordCache(const RecordCache&) = delete;
  RecordCache& operator=(const RecordCache&) = delete;

  /// Probes for (table, key). `current_epoch` is the partition's epoch as
  /// sampled by the caller *now*; a stored entry with a different fill
  /// epoch is dropped (counted as an invalidation) and reported as a miss.
  bool Get(TableId table, std::string_view key, uint64_t current_epoch,
           VersionedCell* out);

  /// Installs a cell fetched from storage. `fill_epoch` must have been
  /// sampled BEFORE the fetch was issued (see LeaseEpochTable). Negative
  /// results are never cached, so absence needs no invalidation story.
  void Put(TableId table, std::string_view key, const VersionedCell& cell,
           uint64_t fill_epoch);

  RecordCacheStats stats() const;
  size_t entries() const {
    return entry_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string value;
    uint64_t stamp = kStampAbsent;
    uint64_t fill_epoch = 0;
    std::list<std::string>::iterator lru_it;
  };

  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::string, Entry> map;
    std::list<std::string> lru;  // front = most recent
  };

  static std::string CacheKey(TableId table, std::string_view key);
  Shard& ShardOf(const std::string& cache_key);
  void EraseLocked(Shard& shard,
                   std::unordered_map<std::string, Entry>::iterator it);

  const size_t per_shard_capacity_;
  const uint64_t shard_mask_;
  std::vector<Shard> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> entry_count_{0};
};

}  // namespace tell::store

#endif  // TELL_STORE_RECORD_CACHE_H_
