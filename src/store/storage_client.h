#ifndef TELL_STORE_STORAGE_CLIENT_H_
#define TELL_STORE_STORAGE_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "sim/fault_injector.h"
#include "sim/metrics.h"
#include "sim/network_model.h"
#include "sim/virtual_clock.h"
#include "store/cluster.h"
#include "store/management_node.h"
#include "store/retry_policy.h"

namespace tell::store {

/// One logical read in a batch.
struct GetOp {
  TableId table;
  std::string key;
};

/// One logical write in a batch. `conditional` selects LL/SC semantics
/// (expected_stamp must match; kStampAbsent means insert-if-absent);
/// `erase` deletes instead of writing.
struct WriteOp {
  TableId table;
  std::string key;
  std::string value;
  uint64_t expected_stamp = kStampAbsent;
  bool conditional = true;
  bool erase = false;
};

/// Client-side knobs; the defaults reproduce the paper's configuration.
struct ClientOptions {
  sim::NetworkModel network = sim::NetworkModel::InfiniBand();
  sim::CpuModel cpu;
  /// Paper §5.1: Tell aggressively batches operations — several logical ops
  /// to the same storage node travel in one request, and requests to
  /// different nodes are issued in parallel. Disabled for the batching
  /// ablation bench (each op then pays a full sequential round trip).
  bool batching = true;
  /// Extra round trips charged per write for synchronous replication
  /// (master -> backup chain). Set from the cluster's replication factor.
  uint32_t replication_extra_hops = 0;
  /// Unified retry/backoff policy for Unavailable failures (fail-over,
  /// injected faults). Shared by every request path of the client.
  RetryPolicy retry;
  /// Seed of the client's private RNG (backoff jitter). Give each worker a
  /// distinct seed for reproducible-yet-decorrelated backoff.
  uint64_t retry_seed = 0xC0FFEE;
  /// Optional deterministic fault injection: consulted once per storage
  /// request. Not owned; shared by all clients of a cluster. nullptr = no
  /// faults.
  sim::FaultInjector* fault_injector = nullptr;
};

/// The storage interface of a processing node worker (paper Fig. 3,
/// "Storage Interface / Get/Put Byte[]").
///
/// Semantically a thin veneer over Cluster; its real job is *accounting*:
/// every interaction charges modelled network + CPU time to the worker's
/// VirtualClock and updates its WorkerMetrics, which is how all benchmark
/// figures are produced. Each worker thread owns its own StorageClient, so
/// nothing here needs synchronization.
///
/// Failure handling: every request path funnels through one retry loop
/// driven by ClientOptions::retry. An Unavailable response triggers
/// fail-over through the management node, an exponential backoff in virtual
/// time (jitter from the client's seeded RNG), and — for conditional writes
/// and erases, whose lost responses are ambiguous — a re-read that decides
/// whether the write applied before the op is re-issued.
class StorageClient {
 public:
  StorageClient(Cluster* cluster, ManagementNode* management,
                const ClientOptions& options, sim::VirtualClock* clock,
                sim::WorkerMetrics* metrics)
      : cluster_(cluster),
        management_(management),
        options_(options),
        clock_(clock),
        metrics_(metrics),
        rng_(options.retry_seed) {}

  StorageClient(const StorageClient&) = delete;
  StorageClient& operator=(const StorageClient&) = delete;

  const ClientOptions& options() const { return options_; }
  sim::VirtualClock* clock() { return clock_; }
  sim::WorkerMetrics* metrics() { return metrics_; }
  Cluster* cluster() { return cluster_; }

  /// Single-record read (one round trip).
  Result<VersionedCell> Get(TableId table, std::string_view key);

  /// Reads many records. With batching on, ops going to the same storage
  /// node share one request and requests to distinct nodes fly in parallel,
  /// so the charged time is the *maximum* over nodes, not the sum.
  std::vector<Result<VersionedCell>> BatchGet(const std::vector<GetOp>& ops);

  /// Unconditional single write.
  Result<uint64_t> Put(TableId table, std::string_view key,
                       std::string_view value);

  /// Store-conditional single write (the LL/SC commit primitive).
  Result<uint64_t> ConditionalPut(TableId table, std::string_view key,
                                  uint64_t expected_stamp,
                                  std::string_view value);

  Status Erase(TableId table, std::string_view key);
  Status ConditionalErase(TableId table, std::string_view key,
                          uint64_t expected_stamp);

  /// Applies many writes; same batching rules as BatchGet. Results are
  /// positionally aligned with `ops`: the new stamp for puts, 0 for erases,
  /// or the failure status. Ops are *independent* — a failed conditional put
  /// does not stop the others (the transaction layer decides what to roll
  /// back).
  std::vector<Result<uint64_t>> BatchWrite(const std::vector<WriteOp>& ops);

  /// Ordered scan; partition scans are issued in parallel.
  Result<std::vector<KeyCell>> Scan(TableId table, std::string_view start_key,
                                    std::string_view end_key, size_t limit,
                                    bool reverse = false);

  /// Push-down scan (§5.2): the predicate executes on the storage nodes and
  /// only matching cells cross the network, so the charged traffic is the
  /// result set, not the table. `filter_descriptor_bytes` models the size
  /// of the serialized predicate shipped with the request.
  Result<std::vector<KeyCell>> PushdownScan(
      TableId table, std::string_view start_key, std::string_view end_key,
      size_t limit,
      const std::function<bool(std::string_view, std::string_view)>& predicate,
      uint64_t filter_descriptor_bytes = 64);

  /// Atomic fetch-add on a counter cell (one round trip). NOT idempotent:
  /// a retried ambiguous increment may apply twice. All in-tree uses hand
  /// out id ranges, where a double-applied increment merely skips ids.
  Result<int64_t> AtomicIncrement(TableId table, std::string_view key,
                                  int64_t delta);

  /// Charges pure CPU time to the worker (used by the transaction and query
  /// layers for their own modelled work).
  void ChargeCpu(uint64_t ns) { clock_->Advance(ns); }

  /// Charges one non-storage RPC (e.g. the commit manager's start() call) to
  /// the worker: same network model, counted as a request.
  void ChargeRpc(uint64_t request_bytes, uint64_t response_bytes) {
    ChargeRequest(request_bytes, response_bytes);
  }

 private:
  /// Charges one network request and updates metrics.
  void ChargeRequest(uint64_t request_bytes, uint64_t response_bytes);
  /// Charges n parallel requests (max of individual costs — here they are
  /// uniform per-group costs, so cost of the largest group).
  void ChargeParallelRequests(const std::vector<std::pair<uint64_t, uint64_t>>&
                                  per_request_bytes);
  void ChargeReplication(uint64_t num_writes);

  // NB: Result::status() returns by value, so these must too.
  static Status StatusOf(const Status& status) { return status; }
  template <typename T>
  static Status StatusOf(const Result<T>& result) {
    return result.status();
  }

  /// Issues one request against the cluster with the fault plan applied:
  /// may crash-stop a node, charge a latency spike, drop the request
  /// (nothing executed) or drop the response (executed, outcome lost).
  template <typename Send>
  auto IssueOnce(sim::FaultOpClass op, TableId table, Send&& send)
      -> decltype(send()) {
    if (options_.fault_injector == nullptr) return send();
    sim::FaultInjector::Decision d =
        options_.fault_injector->OnRequest(op, table);
    if (d.kill_node >= 0 &&
        d.kill_node < static_cast<int64_t>(cluster_->num_nodes())) {
      cluster_->node(static_cast<uint32_t>(d.kill_node))->Kill();
    }
    if (d.extra_latency_ns > 0) clock_->Advance(d.extra_latency_ns);
    if (d.drop_request) {
      return Status::Unavailable("injected fault: request dropped");
    }
    auto result = send();
    if (d.drop_response) {
      return Status::Unavailable(
          "injected fault: response dropped (ambiguous outcome)");
    }
    return result;
  }

  /// The single retry loop every path uses. `send` issues the request;
  /// `resolve` is consulted after an Unavailable attempt and before the
  /// re-issue: it returns a final result if it can prove the ambiguous
  /// write's outcome (applied / superseded), or nullopt to re-issue.
  template <typename Send, typename Resolve>
  auto IssueWithRetry(sim::FaultOpClass op, TableId table, Send&& send,
                      Resolve&& resolve) -> decltype(send()) {
    auto result = IssueOnce(op, table, send);
    for (uint32_t retry = 1; StatusOf(result).IsUnavailable() &&
                             retry < options_.retry.max_attempts;
         ++retry) {
      // Fail-over first: a dead master stays dead until the management node
      // promotes a replica, so retrying without it is pointless. Consulting
      // the lookup service costs one small round trip.
      if (management_ != nullptr) {
        (void)management_->DetectAndRecover();
        ChargeRequest(64, 64);
      }
      uint64_t backoff = options_.retry.BackoffNs(retry, &rng_);
      clock_->Advance(backoff);
      metrics_->storage_retries += 1;
      metrics_->retry_backoff_ns += backoff;
      auto resolved = resolve();
      if (resolved.has_value()) {
        metrics_->ambiguous_resolved += 1;
        return std::move(*resolved);
      }
      result = IssueOnce(op, table, send);
    }
    if (StatusOf(result).IsUnavailable()) {
      metrics_->storage_retries_exhausted += 1;
    }
    return result;
  }

  /// Idempotent ops (reads, scans, unconditional puts, increments): no
  /// ambiguity resolution, plain bounded re-issue.
  template <typename Send>
  auto IssueWithRetry(sim::FaultOpClass op, TableId table, Send&& send)
      -> decltype(send()) {
    using R = decltype(send());
    return IssueWithRetry(op, table, std::forward<Send>(send),
                          []() -> std::optional<R> { return std::nullopt; });
  }

  /// Retried single-op primitives without cost accounting; the public
  /// methods and the batch paths layer their own request charges on top.
  Result<VersionedCell> GetWithRetry(TableId table, std::string_view key);
  Result<uint64_t> PutWithRetry(TableId table, std::string_view key,
                                std::string_view value);
  Result<uint64_t> ConditionalPutWithRetry(TableId table, std::string_view key,
                                           uint64_t expected_stamp,
                                           std::string_view value);
  Status EraseWithRetry(TableId table, std::string_view key);
  Status ConditionalEraseWithRetry(TableId table, std::string_view key,
                                   uint64_t expected_stamp);

  Cluster* const cluster_;
  ManagementNode* const management_;
  const ClientOptions options_;
  sim::VirtualClock* const clock_;
  sim::WorkerMetrics* const metrics_;
  /// Private RNG for backoff jitter (seeded; decorrelates workers without
  /// giving up reproducibility).
  Random rng_;
};

}  // namespace tell::store

#endif  // TELL_STORE_STORAGE_CLIENT_H_
