#ifndef TELL_STORE_STORAGE_CLIENT_H_
#define TELL_STORE_STORAGE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/future.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "sim/fault_injector.h"
#include "sim/metrics.h"
#include "sim/network_model.h"
#include "sim/virtual_clock.h"
#include "store/cluster.h"
#include "store/management_node.h"
#include "store/retry_policy.h"

namespace tell::store {

/// One logical read in a batch.
struct GetOp {
  TableId table;
  std::string key;
};

/// One logical write in a batch. `conditional` selects LL/SC semantics
/// (expected_stamp must match; kStampAbsent means insert-if-absent);
/// `erase` deletes instead of writing.
struct WriteOp {
  TableId table;
  std::string key;
  std::string value;
  uint64_t expected_stamp = kStampAbsent;
  bool conditional = true;
  bool erase = false;
};

/// Client-side knobs; the defaults reproduce the paper's configuration.
struct ClientOptions {
  sim::NetworkModel network = sim::NetworkModel::InfiniBand();
  sim::CpuModel cpu;
  /// Paper §5.1: Tell aggressively batches operations — several logical ops
  /// to the same storage node travel in one request, and requests to
  /// different nodes are issued in parallel. Disabled for the batching
  /// ablation bench (each op then pays a full sequential round trip).
  bool batching = true;
  /// Request pipelining (§5.1's "aggressive batching" taken to its
  /// conclusion): Async* calls enqueue into a per-worker combiner instead of
  /// blocking; Flush() coalesces everything outstanding into one message per
  /// storage node and charges a single shared round trip per node (the
  /// NetworkModel::CoalescedRequestCost overlap accounting) instead of N
  /// serial RTTs. Off by default: the synchronous paths then stay
  /// bit-identical, and Async* calls degrade to immediate execution.
  bool pipelining = false;
  /// Extra round trips charged per write for synchronous replication
  /// (master -> backup chain). Set from the cluster's replication factor.
  uint32_t replication_extra_hops = 0;
  /// Unified retry/backoff policy for Unavailable failures (fail-over,
  /// injected faults). Shared by every request path of the client.
  RetryPolicy retry;
  /// Seed of the client's private RNG (backoff jitter). Give each worker a
  /// distinct seed for reproducible-yet-decorrelated backoff.
  uint64_t retry_seed = 0xC0FFEE;
  /// Optional deterministic fault injection: consulted once per storage
  /// request. Not owned; shared by all clients of a cluster. nullptr = no
  /// faults.
  sim::FaultInjector* fault_injector = nullptr;
  /// Optional per-PN shared record cache (store/record_cache.h), holding
  /// versioned cells and B-tree leaves under lease epochs. Not owned;
  /// shared by every worker client of the processing node. nullptr = no
  /// caching. A hit skips the network round trip entirely (only the client
  /// per-op CPU is charged) and is guaranteed byte-identical to a fresh
  /// fetch by the lease-epoch protocol.
  RecordCache* record_cache = nullptr;
  /// Model reads as one-sided RDMA READs when the NetworkModel supports
  /// them (NetworkModel::HasOneSidedReads): the fetch pays
  /// OneSidedReadCost — no software overhead, no storage-node request
  /// dispatch — and is validated client-side against the partition's lease
  /// epoch (seqlock style). Validation failure falls back to the ordinary
  /// two-sided path. Ignored on kernel-TCP models.
  bool one_sided_reads = false;
  /// Cells per chunk of a vectorized fragment scan
  /// (StorageNode::FragmentScan). Between chunks the node drops every stripe
  /// lock, so smaller chunks mean less OLTP blocking per analytical pass at
  /// the price of more lock cycling.
  uint32_t scan_chunk_cells = 1024;
};

/// Result of one fragment fan-out (ExecuteFragmentScan): the per-partition
/// sinks (holding typed partial-aggregate states for the caller to merge)
/// plus the traffic/row accounting behind the sql.scan.* counters.
struct FragmentScanOutcome {
  std::vector<std::unique_ptr<FragmentSink>> sinks;  // one per partition
  uint64_t partitions = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_returned = 0;
  /// Partial-state response bytes actually charged (incl. framing).
  uint64_t response_bytes = 0;
  /// What a row-shipping scan would have charged for the same matches.
  uint64_t baseline_bytes = 0;
  uint64_t chunk_lock_releases = 0;
};

/// The storage interface of a processing node worker (paper Fig. 3,
/// "Storage Interface / Get/Put Byte[]").
///
/// Semantically a thin veneer over Cluster; its real job is *accounting*:
/// every interaction charges modelled network + CPU time to the worker's
/// VirtualClock and updates its WorkerMetrics, which is how all benchmark
/// figures are produced. Each worker thread owns its own StorageClient, so
/// nothing here needs synchronization.
///
/// Failure handling: every request path funnels through one retry loop
/// driven by ClientOptions::retry. An Unavailable response triggers
/// fail-over through the management node, an exponential backoff in virtual
/// time (jitter from the client's seeded RNG), and — for conditional writes
/// and erases, whose lost responses are ambiguous — a re-read that decides
/// whether the write applied before the op is re-issued.
class StorageClient : public PipelineFlusher {
 public:
  StorageClient(Cluster* cluster, ManagementNode* management,
                const ClientOptions& options, sim::VirtualClock* clock,
                sim::WorkerMetrics* metrics)
      : cluster_(cluster),
        management_(management),
        options_(options),
        clock_(clock),
        metrics_(metrics),
        rng_(options.retry_seed) {}

  StorageClient(const StorageClient&) = delete;
  StorageClient& operator=(const StorageClient&) = delete;

  const ClientOptions& options() const { return options_; }
  sim::VirtualClock* clock() { return clock_; }
  sim::WorkerMetrics* metrics() { return metrics_; }
  Cluster* cluster() { return cluster_; }

  /// Single-record read (one round trip; record cache and one-sided path
  /// applied when configured).
  Result<VersionedCell> Get(TableId table, std::string_view key);

  /// Explicit one-sided read: fetches the versioned cell raw via an RDMA
  /// READ and validates it client-side against the partition's lease epoch,
  /// regardless of ClientOptions::one_sided_reads. Falls back to the
  /// two-sided path when the network model has no one-sided support or the
  /// validation fails. Same future semantics as AsyncGet.
  Future<VersionedCell> AsyncOneSidedGet(TableId table, std::string_view key);

  /// --- Asynchronous pipeline (ClientOptions::pipelining) -------------------
  ///
  /// Async* calls enqueue a logical request and return an unresolved future;
  /// Flush() coalesces all outstanding requests into one message per storage
  /// node (issued in parallel across nodes) and resolves the futures.
  /// Joining any unresolved future flushes implicitly. Each logical request
  /// still resolves through the full RetryPolicy — fail-over, jittered
  /// backoff, ambiguous-write resolution — after the coalesced first attempt.
  /// With pipelining disabled the calls execute immediately (identical cost
  /// accounting and fault-injection stream to the synchronous paths) and
  /// return ready futures.
  Future<VersionedCell> AsyncGet(TableId table, std::string_view key);
  Future<uint64_t> AsyncPut(TableId table, std::string_view key,
                            std::string_view value);
  Future<uint64_t> AsyncConditionalPut(TableId table, std::string_view key,
                                       uint64_t expected_stamp,
                                       std::string_view value);
  /// Erase futures resolve to 0 on success (BatchWrite's convention).
  Future<uint64_t> AsyncErase(TableId table, std::string_view key);
  Future<uint64_t> AsyncConditionalErase(TableId table, std::string_view key,
                                         uint64_t expected_stamp);

  /// Issues every outstanding async request: one coalesced message per
  /// storage node, fault injection consulted once per *message* (the same
  /// unit the accounting charges), virtual time advanced by the slowest
  /// node's message. No-op when nothing is pending.
  void Flush() override;

  /// Outstanding async requests not yet flushed.
  size_t PendingOps() const { return pending_.size(); }

  /// Reads many records. With batching on, ops going to the same storage
  /// node share one request and requests to distinct nodes fly in parallel,
  /// so the charged time is the *maximum* over nodes, not the sum.
  std::vector<Result<VersionedCell>> BatchGet(const std::vector<GetOp>& ops);

  /// Unconditional single write.
  Result<uint64_t> Put(TableId table, std::string_view key,
                       std::string_view value);

  /// Store-conditional single write (the LL/SC commit primitive).
  Result<uint64_t> ConditionalPut(TableId table, std::string_view key,
                                  uint64_t expected_stamp,
                                  std::string_view value);

  Status Erase(TableId table, std::string_view key);
  Status ConditionalErase(TableId table, std::string_view key,
                          uint64_t expected_stamp);

  /// Applies many writes; same batching rules as BatchGet. Results are
  /// positionally aligned with `ops`: the new stamp for puts, 0 for erases,
  /// or the failure status. Ops are *independent* — a failed conditional put
  /// does not stop the others (the transaction layer decides what to roll
  /// back).
  std::vector<Result<uint64_t>> BatchWrite(const std::vector<WriteOp>& ops);

  /// Ordered scan; partition scans are issued in parallel.
  Result<std::vector<KeyCell>> Scan(TableId table, std::string_view start_key,
                                    std::string_view end_key, size_t limit,
                                    bool reverse = false);

  /// Push-down scan (§5.2): the transform executes on the storage nodes and
  /// only matching rows' visible payloads (not the stored multi-version
  /// cells) cross the network, so the charged traffic is the live result
  /// set, not the table. `filter_descriptor_bytes` models the size of the
  /// serialized predicate shipped with the request; `scanned` (optional)
  /// reports cells examined server-side.
  Result<std::vector<KeyCell>> PushdownScan(
      TableId table, std::string_view start_key, std::string_view end_key,
      size_t limit,
      const std::function<bool(std::string_view, std::string_view,
                               std::string*)>& transform,
      uint64_t filter_descriptor_bytes = 64, uint64_t* scanned = nullptr);

  /// Vectorized fragment fan-out (DESIGN.md "Vectorized scans & aggregate
  /// pushdown"): runs one sink per partition of `table` through the chunked
  /// FragmentScan path and charges the fan-out as parallel requests — the
  /// virtual-time cost is the slowest partition's fragment, not the sum, and
  /// each response is the serialized partial state, O(groups) bytes.
  /// `descriptor_bytes` is the serialized ScanFragment size shipped with
  /// every request. The factory builds a fresh sink per partition (and per
  /// retry attempt, so replays never double-fold).
  Result<FragmentScanOutcome> ExecuteFragmentScan(
      TableId table, uint64_t descriptor_bytes,
      const FragmentSinkFactory& make_sink);

  /// Atomic fetch-add on a counter cell (one round trip). NOT idempotent:
  /// a retried ambiguous increment may apply twice. All in-tree uses hand
  /// out id ranges, where a double-applied increment merely skips ids.
  Result<int64_t> AtomicIncrement(TableId table, std::string_view key,
                                  int64_t delta);

  /// Charges pure CPU time to the worker (used by the transaction and query
  /// layers for their own modelled work).
  void ChargeCpu(uint64_t ns) { clock_->Advance(ns); }

  /// Charges one non-storage RPC (e.g. the commit manager's start() call) to
  /// the worker: same network model, counted as a request.
  void ChargeRpc(uint64_t request_bytes, uint64_t response_bytes) {
    ChargeRequest(request_bytes, response_bytes);
  }

 private:
  /// Charges one network request and updates metrics.
  void ChargeRequest(uint64_t request_bytes, uint64_t response_bytes);
  /// Charges n parallel requests (max of individual costs — here they are
  /// uniform per-group costs, so cost of the largest group).
  void ChargeParallelRequests(const std::vector<std::pair<uint64_t, uint64_t>>&
                                  per_request_bytes);
  void ChargeReplication(uint64_t num_writes);

  // NB: Result::status() returns by value, so these must too.
  static Status StatusOf(const Status& status) { return status; }
  template <typename T>
  static Status StatusOf(const Result<T>& result) {
    return result.status();
  }

  /// Issues one request against the cluster with the fault plan applied:
  /// may crash-stop a node, charge a latency spike, drop the request
  /// (nothing executed) or drop the response (executed, outcome lost).
  template <typename Send>
  auto IssueOnce(sim::FaultOpClass op, TableId table, Send&& send)
      -> decltype(send()) {
    if (options_.fault_injector == nullptr) return send();
    sim::FaultInjector::Decision d =
        options_.fault_injector->OnRequest(op, table);
    if (d.kill_node >= 0 &&
        d.kill_node < static_cast<int64_t>(cluster_->num_nodes())) {
      cluster_->node(static_cast<uint32_t>(d.kill_node))->Kill();
    }
    if (d.extra_latency_ns > 0) clock_->Advance(d.extra_latency_ns);
    if (d.drop_request) {
      return Status::Unavailable("injected fault: request dropped");
    }
    auto result = send();
    if (d.drop_response) {
      return Status::Unavailable(
          "injected fault: response dropped (ambiguous outcome)");
    }
    return result;
  }

  /// The single retry loop every path uses, seeded with the result of an
  /// already-issued first attempt (the pipeline issues first attempts inside
  /// a coalesced message, then runs this loop per still-Unavailable logical
  /// request). `send` re-issues the request; `resolve` is consulted after an
  /// Unavailable attempt and before the re-issue: it returns a final result
  /// if it can prove the ambiguous write's outcome (applied / superseded),
  /// or nullopt to re-issue.
  template <typename R, typename Send, typename Resolve>
  R RetryLoop(sim::FaultOpClass op, TableId table, R result, Send&& send,
              Resolve&& resolve) {
    for (uint32_t retry = 1; StatusOf(result).IsUnavailable() &&
                             retry < options_.retry.max_attempts;
         ++retry) {
      // Fail-over first: a dead master stays dead until the management node
      // promotes a replica, so retrying without it is pointless. Consulting
      // the lookup service costs one small round trip.
      if (management_ != nullptr) {
        (void)management_->DetectAndRecover();
        ChargeRequest(64, 64);
      }
      uint64_t backoff = options_.retry.BackoffNs(retry, &rng_);
      clock_->Advance(backoff);
      metrics_->storage_retries += 1;
      metrics_->retry_backoff_ns += backoff;
      auto resolved = resolve();
      if (resolved.has_value()) {
        metrics_->ambiguous_resolved += 1;
        return std::move(*resolved);
      }
      result = IssueOnce(op, table, send);
    }
    if (StatusOf(result).IsUnavailable()) {
      metrics_->storage_retries_exhausted += 1;
    }
    return result;
  }

  template <typename Send, typename Resolve>
  auto IssueWithRetry(sim::FaultOpClass op, TableId table, Send&& send,
                      Resolve&& resolve) -> decltype(send()) {
    return RetryLoop(op, table, IssueOnce(op, table, send),
                     std::forward<Send>(send), std::forward<Resolve>(resolve));
  }

  /// Idempotent ops (reads, scans, unconditional puts, increments): no
  /// ambiguity resolution, plain bounded re-issue.
  template <typename Send>
  auto IssueWithRetry(sim::FaultOpClass op, TableId table, Send&& send)
      -> decltype(send()) {
    using R = decltype(send());
    return IssueWithRetry(op, table, std::forward<Send>(send),
                          []() -> std::optional<R> { return std::nullopt; });
  }

  /// Whether reads may take the one-sided path (client opted in AND the
  /// network model supports RDMA READs).
  bool OneSidedEnabled() const {
    return options_.one_sided_reads && options_.network.HasOneSidedReads();
  }

  /// Current lease epoch of the partition owning (table, key); 0 when the
  /// partition cannot be resolved (the fetch will fail the same way).
  uint64_t LeaseEpochOf(TableId table, std::string_view key) const;

  /// Record-cache probe. On a hit fills `out` (byte-identical to a fresh
  /// fetch by the lease protocol) and counts a cache hit; no network is
  /// charged. Counts a miss otherwise. No-op false without a cache.
  bool CacheProbe(TableId table, std::string_view key, VersionedCell* out);

  /// Installs a fetched cell with the epoch sampled before the fetch.
  void CacheFill(TableId table, std::string_view key,
                 const VersionedCell& cell, uint64_t fill_epoch);

  /// One attempt of the one-sided protocol, uncharged: samples the epoch,
  /// fetches the raw cell bypassing the storage-node request path, and
  /// re-samples to validate. Returns the result (possibly NotFound) with
  /// `fill_epoch`/`response_bytes` set, or nullopt when validation failed —
  /// epoch moved, injected fault, or node down — in which case the caller
  /// counts the fallback and uses the two-sided path.
  std::optional<Result<VersionedCell>> OneSidedFetch(TableId table,
                                                     std::string_view key,
                                                     uint64_t* fill_epoch,
                                                     uint64_t* response_bytes);

  /// Charges one one-sided READ: NetworkModel::OneSidedReadCost, no
  /// per-request framing and no software overhead.
  void ChargeOneSidedRead(uint64_t request_bytes, uint64_t response_bytes);

  /// Shared body of Get and the immediate (non-pipelined) AsyncOneSidedGet:
  /// cache probe, optional one-sided attempt, two-sided fallback + fill.
  Result<VersionedCell> GetImpl(TableId table, std::string_view key,
                                bool try_one_sided);

  /// Retried single-op primitives without cost accounting; the public
  /// methods and the batch paths layer their own request charges on top.
  Result<VersionedCell> GetWithRetry(TableId table, std::string_view key);
  Result<uint64_t> PutWithRetry(TableId table, std::string_view key,
                                std::string_view value);
  Result<uint64_t> ConditionalPutWithRetry(TableId table, std::string_view key,
                                           uint64_t expected_stamp,
                                           std::string_view value);
  Status EraseWithRetry(TableId table, std::string_view key);
  Status ConditionalEraseWithRetry(TableId table, std::string_view key,
                                   uint64_t expected_stamp);

  /// Ambiguity resolvers shared by the *WithRetry primitives and the
  /// pipeline: re-read the cell and decide the outcome of a conditional
  /// write/erase whose response was lost, or return nullopt to re-issue.
  std::optional<Result<uint64_t>> ResolveAmbiguousConditionalPut(
      TableId table, std::string_view key, uint64_t expected_stamp,
      std::string_view value);
  std::optional<Status> ResolveAmbiguousErase(TableId table,
                                              std::string_view key);
  std::optional<Status> ResolveAmbiguousConditionalErase(
      TableId table, std::string_view key, uint64_t expected_stamp);

  /// One logical request waiting in the pipeline.
  struct PendingOp {
    enum class Kind : uint8_t {
      kGet,
      kPut,
      kConditionalPut,
      kErase,
      kConditionalErase,
    };
    Kind kind;
    TableId table;
    std::string key;
    std::string value;               // puts only
    uint64_t expected_stamp = 0;     // conditional ops only
    /// kGet only: attempt the one-sided path for this op at flush time.
    bool one_sided = false;
    /// kGet only: lease epoch sampled immediately before the fetch executed
    /// (the cache-fill tag and the seqlock "before" sample).
    uint64_t fill_epoch = 0;
    // Exactly one of the two states is set, matching `kind`.
    std::shared_ptr<internal::FutureState<VersionedCell>> get_state;
    std::shared_ptr<internal::FutureState<uint64_t>> write_state;
    // First-attempt results, filled while executing the coalesced message.
    std::optional<Result<VersionedCell>> get_result;
    std::optional<Result<uint64_t>> write_result;
  };

  static sim::FaultOpClass OpClassOf(PendingOp::Kind kind);
  /// Raw single-op execution against the cluster (no injection, no charges);
  /// fills the op's first-attempt result and returns its response bytes.
  uint64_t ExecuteRaw(PendingOp* op);
  /// Runs the RetryPolicy for a first attempt that came back Unavailable,
  /// applies ambiguity resolution, and resolves the op's future.
  void ResolvePending(PendingOp* op, uint64_t* replicated_writes);

  Cluster* const cluster_;
  ManagementNode* const management_;
  const ClientOptions options_;
  sim::VirtualClock* const clock_;
  sim::WorkerMetrics* const metrics_;
  /// Private RNG for backoff jitter (seeded; decorrelates workers without
  /// giving up reproducibility).
  Random rng_;
  /// Async requests enqueued since the last Flush().
  std::vector<PendingOp> pending_;
};

}  // namespace tell::store

#endif  // TELL_STORE_STORAGE_CLIENT_H_
