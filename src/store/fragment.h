#ifndef TELL_STORE_FRAGMENT_H_
#define TELL_STORE_FRAGMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tell::store {

/// Per-call statistics of one chunked fragment scan over one partition
/// (StorageNode::FragmentScan). Aggregated by the caller across partitions
/// and surfaced as the `sql.scan.*` worker counters.
struct FragmentScanStats {
  /// Cells the node examined (every live key of the partition range).
  uint64_t cells_scanned = 0;
  /// Times the scan dropped every stripe lock mid-pass and re-acquired for
  /// the next chunk. Zero means the whole partition fit in one chunk; under
  /// an OLTP mix this is the "never holds the table for a full pass" proof.
  uint64_t chunk_lock_releases = 0;

  void Accumulate(const FragmentScanStats& other) {
    cells_scanned += other.cells_scanned;
    chunk_lock_releases += other.chunk_lock_releases;
  }
};

/// Storage-side consumer of a vectorized scan fragment (DESIGN.md
/// "Vectorized scans & aggregate pushdown"). The storage layer is
/// schema-agnostic — tell_store does not link tell_schema — so the node only
/// streams raw (key, cell) pairs into this interface; the typed work
/// (visibility, tuple decode, filter, projection, partial-aggregate fold)
/// lives in the sql-layer implementation (sql/scan_fragment.h).
///
/// Absorb() runs on the storage node with NO stripe locks held: the node
/// copies a chunk of cells out under its locks, releases them, then feeds
/// the chunk through the sink — so an expensive decode never blocks OLTP
/// point operations. Snapshot consistency across the lock release comes from
/// MVCC: the sink judges visibility per version against a fixed snapshot,
/// and version lists only grow (deletes are tombstone versions).
class FragmentSink {
 public:
  virtual ~FragmentSink() = default;

  /// Feeds one stored cell (raw VersionedRecord bytes). Returns false to
  /// stop the scan early (limit reached); errors are latched in status().
  virtual bool Absorb(std::string_view key, std::string_view value) = 0;

  /// Serialized partial state after the scan — the bytes that travel back to
  /// the processing node, charged as the response payload. Size O(groups).
  virtual std::string Finish() = 0;

  /// Rows (groups) the partial state carries.
  virtual uint64_t rows_returned() const = 0;
  /// Bytes a row-shipping scan would have sent for the same matches
  /// (key + visible payload + framing per matching row) — the baseline that
  /// `sql.scan.bytes_saved` is measured against.
  virtual uint64_t baseline_bytes() const = 0;
  /// First decode/fold error, if any. The scan stops on error.
  virtual Status status() const = 0;
};

/// Builds a fresh sink for one partition's fragment execution. Called per
/// partition AND per retry attempt, so a replayed fragment (fault injection)
/// never double-counts into a half-filled sink.
using FragmentSinkFactory =
    std::function<std::unique_ptr<FragmentSink>(uint32_t partition)>;

}  // namespace tell::store

#endif  // TELL_STORE_FRAGMENT_H_
