#include "store/cluster.h"

#include <algorithm>
#include <mutex>

#include "common/logging.h"

namespace tell::store {

Cluster::Cluster(const ClusterOptions& options) : options_(options) {
  TELL_CHECK(options_.num_storage_nodes > 0);
  TELL_CHECK(options_.replication_factor >= 1);
  TELL_CHECK(options_.replication_factor <= options_.num_storage_nodes);
  nodes_.reserve(options_.num_storage_nodes);
  for (uint32_t i = 0; i < options_.num_storage_nodes; ++i) {
    nodes_.push_back(std::make_unique<StorageNode>(
        i, options_.memory_per_node_bytes, options_.stripes_per_partition));
    nodes_.back()->set_lease_epochs(&lease_epochs_);
  }
}

Result<TableId> Cluster::CreateTable(const std::string& name) {
  std::unique_lock lock(catalog_mutex_);
  if (catalog_.find(name) != catalog_.end()) {
    return Status::AlreadyExists("table '" + name + "' exists");
  }
  TableId id = next_table_id_++;
  uint32_t num_partitions =
      options_.num_storage_nodes * options_.partitions_per_node;
  std::vector<uint32_t> node_ids;
  for (const auto& node : nodes_) {
    if (node->alive()) node_ids.push_back(node->node_id());
  }
  TELL_RETURN_NOT_OK(partition_map_.AddTable(id, num_partitions, node_ids,
                                             options_.replication_factor));
  // Materialize the partitions on every hosting node (master and backups).
  for (uint32_t p = 0; p < num_partitions; ++p) {
    auto placement = partition_map_.PlacementOf(id, p);
    TELL_CHECK(placement.ok());
    nodes_[placement->master]->CreatePartition(id, p);
    for (uint32_t replica : placement->replicas) {
      nodes_[replica]->CreatePartition(id, p);
    }
  }
  catalog_.emplace(name, id);
  return id;
}

Result<TableId> Cluster::TableByName(const std::string& name) const {
  std::shared_lock lock(catalog_mutex_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) return Status::NotFound("table '" + name + "'");
  return it->second;
}

Result<Cluster::Route> Cluster::RouteFor(TableId table,
                                         std::string_view key) const {
  TELL_ASSIGN_OR_RETURN(uint32_t partition,
                        partition_map_.PartitionFor(table, key));
  return RouteForPartition(table, partition);
}

Result<Cluster::Route> Cluster::RouteForPartition(TableId table,
                                                  uint32_t partition) const {
  TELL_ASSIGN_OR_RETURN(PartitionPlacement placement,
                        partition_map_.PlacementOf(table, partition));
  Route route;
  route.partition = partition;
  route.write_frozen = placement.write_frozen;
  route.master = const_cast<StorageNode*>(nodes_[placement.master].get());
  if (!route.master->alive()) {
    return Status::Unavailable("master of partition is down");
  }
  for (uint32_t replica : placement.replicas) {
    StorageNode* node = const_cast<StorageNode*>(nodes_[replica].get());
    if (node->alive()) route.replicas.push_back(node);
  }
  return route;
}

Result<VersionedCell> Cluster::Get(TableId table, std::string_view key) const {
  TELL_ASSIGN_OR_RETURN(Route route, RouteFor(table, key));
  return route.master->Get(table, route.partition, key);
}

Result<VersionedCell> Cluster::OneSidedGet(TableId table,
                                           std::string_view key) const {
  TELL_ASSIGN_OR_RETURN(Route route, RouteFor(table, key));
  return route.master->OneSidedRead(table, route.partition, key);
}

Result<uint64_t> Cluster::Put(TableId table, std::string_view key,
                              std::string_view value) {
  TELL_ASSIGN_OR_RETURN(Route route, RouteFor(table, key));
  if (route.write_frozen) {
    return Status::Unavailable("partition write-frozen for migration");
  }
  TELL_ASSIGN_OR_RETURN(uint64_t stamp,
                        route.master->Put(table, route.partition, key, value));
  Replicate(table, route.partition, route.replicas, key, value, stamp);
  return stamp;
}

Result<uint64_t> Cluster::ConditionalPut(TableId table, std::string_view key,
                                         uint64_t expected_stamp,
                                         std::string_view value) {
  TELL_ASSIGN_OR_RETURN(Route route, RouteFor(table, key));
  if (route.write_frozen) {
    return Status::Unavailable("partition write-frozen for migration");
  }
  TELL_ASSIGN_OR_RETURN(uint64_t stamp,
                        route.master->ConditionalPut(table, route.partition,
                                                     key, expected_stamp,
                                                     value));
  Replicate(table, route.partition, route.replicas, key, value, stamp);
  return stamp;
}

Status Cluster::ConditionalErase(TableId table, std::string_view key,
                                 uint64_t expected_stamp) {
  TELL_ASSIGN_OR_RETURN(Route route, RouteFor(table, key));
  if (route.write_frozen) {
    return Status::Unavailable("partition write-frozen for migration");
  }
  TELL_RETURN_NOT_OK(route.master->ConditionalErase(table, route.partition,
                                                    key, expected_stamp));
  ReplicateErase(table, route.partition, route.replicas, key);
  return Status::OK();
}

Status Cluster::Erase(TableId table, std::string_view key) {
  TELL_ASSIGN_OR_RETURN(Route route, RouteFor(table, key));
  if (route.write_frozen) {
    return Status::Unavailable("partition write-frozen for migration");
  }
  TELL_RETURN_NOT_OK(route.master->Erase(table, route.partition, key));
  ReplicateErase(table, route.partition, route.replicas, key);
  return Status::OK();
}

Result<int64_t> Cluster::AtomicIncrement(TableId table, std::string_view key,
                                         int64_t delta) {
  TELL_ASSIGN_OR_RETURN(Route route, RouteFor(table, key));
  if (route.write_frozen) {
    return Status::Unavailable("partition write-frozen for migration");
  }
  TELL_ASSIGN_OR_RETURN(int64_t value,
                        route.master->AtomicIncrement(table, route.partition,
                                                      key, delta));
  // Replicate the counter cell so it survives master failure.
  auto cell = route.master->Get(table, route.partition, key);
  if (cell.ok()) {
    Replicate(table, route.partition, route.replicas, key, cell->value,
              cell->stamp);
  }
  return value;
}

Result<std::vector<KeyCell>> Cluster::Scan(TableId table,
                                           std::string_view start_key,
                                           std::string_view end_key,
                                           size_t limit, bool reverse) const {
  TELL_ASSIGN_OR_RETURN(uint32_t num_partitions,
                        partition_map_.NumPartitions(table));
  std::vector<KeyCell> merged;
  for (uint32_t p = 0; p < num_partitions; ++p) {
    TELL_ASSIGN_OR_RETURN(Route route, RouteForPartition(table, p));
    TELL_ASSIGN_OR_RETURN(
        std::vector<KeyCell> part,
        route.master->Scan(table, p, start_key, end_key, limit, reverse));
    merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  if (reverse) {
    std::sort(merged.begin(), merged.end(),
              [](const KeyCell& a, const KeyCell& b) { return a.key > b.key; });
  } else {
    std::sort(merged.begin(), merged.end(),
              [](const KeyCell& a, const KeyCell& b) { return a.key < b.key; });
  }
  if (limit != 0 && merged.size() > limit) merged.resize(limit);
  return merged;
}

Result<std::vector<KeyCell>> Cluster::ScanFiltered(
    TableId table, std::string_view start_key, std::string_view end_key,
    size_t limit,
    const std::function<bool(std::string_view, std::string_view, std::string*)>&
        transform,
    uint64_t* scanned) const {
  TELL_ASSIGN_OR_RETURN(uint32_t num_partitions,
                        partition_map_.NumPartitions(table));
  std::vector<std::vector<KeyCell>> runs;
  runs.reserve(num_partitions);
  size_t total = 0;
  for (uint32_t p = 0; p < num_partitions; ++p) {
    TELL_ASSIGN_OR_RETURN(Route route, RouteForPartition(table, p));
    TELL_ASSIGN_OR_RETURN(
        std::vector<KeyCell> part,
        route.master->ScanFiltered(table, p, start_key, end_key, limit,
                                   transform, scanned));
    total += part.size();
    runs.push_back(std::move(part));
  }
  // Each per-partition run is already key-sorted (the node's merge scan
  // emits in key order), so a linear-min k-way merge — same shape as the
  // striped engine's ordered-scan path — replaces the former
  // concat-and-std::sort over the whole result.
  std::vector<KeyCell> merged;
  merged.reserve(limit != 0 ? std::min(limit, total) : total);
  std::vector<size_t> cur(runs.size(), 0);
  while (limit == 0 || merged.size() < limit) {
    size_t best = runs.size();
    for (size_t r = 0; r < runs.size(); ++r) {
      if (cur[r] == runs[r].size()) continue;
      if (best == runs.size() || runs[r][cur[r]].key < runs[best][cur[best]].key)
        best = r;
    }
    if (best == runs.size()) break;
    merged.push_back(std::move(runs[best][cur[best]]));
    ++cur[best];
  }
  return merged;
}

Status Cluster::FragmentScan(TableId table, uint32_t partition,
                             size_t chunk_cells, FragmentSink* sink,
                             FragmentScanStats* stats) const {
  TELL_ASSIGN_OR_RETURN(Route route, RouteForPartition(table, partition));
  return route.master->FragmentScan(table, partition, chunk_cells, sink,
                                    stats);
}

StorageNode* Cluster::node(uint32_t node_id) {
  TELL_CHECK(node_id < nodes_.size());
  return nodes_[node_id].get();
}

const StorageNode* Cluster::node(uint32_t node_id) const {
  TELL_CHECK(node_id < nodes_.size());
  return nodes_[node_id].get();
}

Result<uint32_t> Cluster::MasterOf(TableId table, std::string_view key) const {
  TELL_ASSIGN_OR_RETURN(uint32_t partition,
                        partition_map_.PartitionFor(table, key));
  TELL_ASSIGN_OR_RETURN(PartitionPlacement placement,
                        partition_map_.PlacementOf(table, partition));
  return placement.master;
}

uint64_t Cluster::TotalMemoryUsed() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    if (node->alive()) total += node->memory_used();
  }
  return total;
}

void Cluster::Replicate(TableId table, uint32_t partition,
                        const std::vector<StorageNode*>& replicas,
                        std::string_view key, std::string_view value,
                        uint64_t stamp) {
  for (StorageNode* replica : replicas) {
    // A replica that died mid-write is simply skipped; the management node
    // will notice and restore the replication level (paper §4.4.2).
    Status st =
        replica->ApplyReplicatedPut(table, partition, key, value, stamp);
    if (!st.ok() && !st.IsUnavailable()) {
      TELL_LOG(kWarn) << "replication to node " << replica->node_id()
                      << " failed: " << st.ToString();
    }
  }
}

void Cluster::ReplicateErase(TableId table, uint32_t partition,
                             const std::vector<StorageNode*>& replicas,
                             std::string_view key) {
  for (StorageNode* replica : replicas) {
    Status st = replica->ApplyReplicatedErase(table, partition, key);
    if (!st.ok() && !st.IsUnavailable() && !st.IsNotFound()) {
      TELL_LOG(kWarn) << "replicated erase to node " << replica->node_id()
                      << " failed: " << st.ToString();
    }
  }
}

}  // namespace tell::store
