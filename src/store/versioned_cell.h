#ifndef TELL_STORE_VERSIONED_CELL_H_
#define TELL_STORE_VERSIONED_CELL_H_

#include <cstdint>
#include <string>

namespace tell::store {

/// Stamp value meaning "the key must not exist" when passed as the expected
/// stamp of a conditional put (insert semantics), and returned as the stamp
/// of a missing cell.
inline constexpr uint64_t kStampAbsent = 0;

/// One stored cell: the value bytes plus a monotonically increasing stamp.
///
/// The stamp is the load-link token for the LL/SC protocol (paper §2.2/§4.1):
/// a Get returns (value, stamp); a ConditionalPut succeeds only if the cell's
/// stamp still equals the stamp the caller read. Because the stamp increments
/// on *every* successful write and is never reused, a cell that was changed
/// and changed back still fails the store-conditional — exactly the
/// ABA-safety property the paper requires of LL/SC (stronger than
/// compare-and-swap on the value).
struct VersionedCell {
  std::string value;
  uint64_t stamp = kStampAbsent;
};

/// A cell together with its key, as returned by range scans.
struct KeyCell {
  std::string key;
  std::string value;
  uint64_t stamp = kStampAbsent;
};

}  // namespace tell::store

#endif  // TELL_STORE_VERSIONED_CELL_H_
