#include "store/storage_node.h"

#include <cstring>
#include <mutex>

#include "common/logging.h"
#include "common/serde.h"

namespace tell::store {

StorageNode::StorageNode(uint32_t node_id, uint64_t memory_capacity_bytes)
    : node_id_(node_id), memory_capacity_(memory_capacity_bytes) {}

void StorageNode::CreatePartition(TableId table, uint32_t partition) {
  std::unique_lock lock(partitions_mutex_);
  uint64_t key = PartitionKey(table, partition);
  if (partitions_.find(key) == partitions_.end()) {
    partitions_.emplace(key, std::make_unique<Partition>());
  }
}

StorageNode::Partition* StorageNode::FindPartition(TableId table,
                                                   uint32_t partition) const {
  std::shared_lock lock(partitions_mutex_);
  auto it = partitions_.find(PartitionKey(table, partition));
  return it == partitions_.end() ? nullptr : it->second.get();
}

Status StorageNode::CheckAlive() const {
  if (!alive()) {
    return Status::Unavailable("storage node " + std::to_string(node_id_) +
                               " is down");
  }
  return Status::OK();
}

Result<VersionedCell> StorageNode::Get(TableId table, uint32_t partition,
                                       std::string_view key) const {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  std::shared_lock lock(part->mutex);
  auto it = part->cells.find(key);
  if (it == part->cells.end()) return Status::NotFound();
  return it->second;
}

Result<uint64_t> StorageNode::Put(TableId table, uint32_t partition,
                                  std::string_view key,
                                  std::string_view value) {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  std::unique_lock lock(part->mutex);
  auto it = part->cells.find(key);
  uint64_t stamp = part->next_stamp++;
  if (it == part->cells.end()) {
    uint64_t bytes = key.size() + value.size() + sizeof(VersionedCell);
    if (memory_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes >
        memory_capacity_) {
      memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
      return Status::CapacityExceeded("storage node " +
                                      std::to_string(node_id_) + " is full");
    }
    part->cells.emplace(std::string(key), VersionedCell{std::string(value), stamp});
  } else {
    int64_t delta = static_cast<int64_t>(value.size()) -
                    static_cast<int64_t>(it->second.value.size());
    memory_used_.fetch_add(static_cast<uint64_t>(delta),
                           std::memory_order_relaxed);
    it->second.value.assign(value);
    it->second.stamp = stamp;
  }
  return stamp;
}

Result<uint64_t> StorageNode::ConditionalPut(TableId table, uint32_t partition,
                                             std::string_view key,
                                             uint64_t expected_stamp,
                                             std::string_view value) {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.conditional_puts.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  std::unique_lock lock(part->mutex);
  auto it = part->cells.find(key);
  uint64_t current = it == part->cells.end() ? kStampAbsent : it->second.stamp;
  if (current != expected_stamp) {
    stats_.llsc_failures.fetch_add(1, std::memory_order_relaxed);
    return Status::ConditionFailed("stamp mismatch: expected " +
                                   std::to_string(expected_stamp) + ", have " +
                                   std::to_string(current));
  }
  uint64_t stamp = part->next_stamp++;
  if (it == part->cells.end()) {
    uint64_t bytes = key.size() + value.size() + sizeof(VersionedCell);
    if (memory_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes >
        memory_capacity_) {
      memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
      return Status::CapacityExceeded("storage node " +
                                      std::to_string(node_id_) + " is full");
    }
    part->cells.emplace(std::string(key),
                        VersionedCell{std::string(value), stamp});
  } else {
    int64_t delta = static_cast<int64_t>(value.size()) -
                    static_cast<int64_t>(it->second.value.size());
    memory_used_.fetch_add(static_cast<uint64_t>(delta),
                           std::memory_order_relaxed);
    it->second.value.assign(value);
    it->second.stamp = stamp;
  }
  return stamp;
}

Status StorageNode::ConditionalErase(TableId table, uint32_t partition,
                                     std::string_view key,
                                     uint64_t expected_stamp) {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.erases.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  std::unique_lock lock(part->mutex);
  auto it = part->cells.find(key);
  if (it == part->cells.end()) return Status::NotFound();
  if (it->second.stamp != expected_stamp) {
    stats_.llsc_failures.fetch_add(1, std::memory_order_relaxed);
    return Status::ConditionFailed();
  }
  memory_used_.fetch_sub(key.size() + it->second.value.size() +
                             sizeof(VersionedCell),
                         std::memory_order_relaxed);
  part->cells.erase(it);
  return Status::OK();
}

Status StorageNode::Erase(TableId table, uint32_t partition,
                          std::string_view key) {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.erases.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  std::unique_lock lock(part->mutex);
  auto it = part->cells.find(key);
  if (it == part->cells.end()) return Status::NotFound();
  memory_used_.fetch_sub(key.size() + it->second.value.size() +
                             sizeof(VersionedCell),
                         std::memory_order_relaxed);
  part->cells.erase(it);
  return Status::OK();
}

Result<std::vector<KeyCell>> StorageNode::Scan(TableId table,
                                               uint32_t partition,
                                               std::string_view start_key,
                                               std::string_view end_key,
                                               size_t limit,
                                               bool reverse) const {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.scans.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  std::shared_lock lock(part->mutex);
  std::vector<KeyCell> out;
  auto lo = part->cells.lower_bound(start_key);
  auto hi = end_key.empty() ? part->cells.end()
                            : part->cells.lower_bound(end_key);
  if (!reverse) {
    for (auto it = lo; it != hi; ++it) {
      out.push_back({it->first, it->second.value, it->second.stamp});
      if (limit != 0 && out.size() >= limit) break;
    }
  } else {
    auto it = hi;
    while (it != lo) {
      --it;
      out.push_back({it->first, it->second.value, it->second.stamp});
      if (limit != 0 && out.size() >= limit) break;
    }
  }
  stats_.cells_scanned.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

Result<std::vector<KeyCell>> StorageNode::ScanFiltered(
    TableId table, uint32_t partition, std::string_view start_key,
    std::string_view end_key, size_t limit,
    const std::function<bool(std::string_view, std::string_view)>& predicate,
    uint64_t* scanned) const {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.scans.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  std::shared_lock lock(part->mutex);
  std::vector<KeyCell> out;
  auto lo = part->cells.lower_bound(start_key);
  auto hi = end_key.empty() ? part->cells.end()
                            : part->cells.lower_bound(end_key);
  uint64_t examined = 0;
  for (auto it = lo; it != hi; ++it) {
    ++examined;
    if (!predicate(it->first, it->second.value)) continue;
    out.push_back({it->first, it->second.value, it->second.stamp});
    if (limit != 0 && out.size() >= limit) break;
  }
  if (scanned != nullptr) *scanned += examined;
  stats_.cells_scanned.fetch_add(examined, std::memory_order_relaxed);
  return out;
}

Result<int64_t> StorageNode::AtomicIncrement(TableId table, uint32_t partition,
                                             std::string_view key,
                                             int64_t delta) {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.atomic_increments.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  std::unique_lock lock(part->mutex);
  auto it = part->cells.find(key);
  int64_t current = 0;
  if (it != part->cells.end() && it->second.value.size() == sizeof(int64_t)) {
    std::memcpy(&current, it->second.value.data(), sizeof(int64_t));
  }
  int64_t updated = current + delta;
  std::string encoded(sizeof(int64_t), '\0');
  std::memcpy(encoded.data(), &updated, sizeof(int64_t));
  uint64_t stamp = part->next_stamp++;
  if (it == part->cells.end()) {
    memory_used_.fetch_add(key.size() + encoded.size() + sizeof(VersionedCell),
                           std::memory_order_relaxed);
    part->cells.emplace(std::string(key), VersionedCell{encoded, stamp});
  } else {
    it->second.value = encoded;
    it->second.stamp = stamp;
  }
  return updated;
}

Result<std::vector<KeyCell>> StorageNode::DumpPartition(
    TableId table, uint32_t partition) const {
  // Intentionally works on a dead node: fail-over needs to read the replica
  // copies hosted on the *surviving* nodes, and tests also use it to verify
  // what a crashed node held.
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  std::shared_lock lock(part->mutex);
  std::vector<KeyCell> out;
  out.reserve(part->cells.size());
  for (const auto& [key, cell] : part->cells) {
    out.push_back({key, cell.value, cell.stamp});
  }
  return out;
}

Status StorageNode::InstallPartition(TableId table, uint32_t partition,
                                     const std::vector<KeyCell>& cells) {
  TELL_RETURN_NOT_OK(CheckAlive());
  CreatePartition(table, partition);
  Partition* part = FindPartition(table, partition);
  std::unique_lock lock(part->mutex);
  uint64_t max_stamp = part->next_stamp;
  for (const auto& cell : cells) {
    auto [it, inserted] = part->cells.insert_or_assign(
        cell.key, VersionedCell{cell.value, cell.stamp});
    if (inserted) {
      memory_used_.fetch_add(cell.key.size() + cell.value.size() +
                                 sizeof(VersionedCell),
                             std::memory_order_relaxed);
    }
    if (cell.stamp >= max_stamp) max_stamp = cell.stamp + 1;
  }
  // Keep the stamp source ahead of every installed stamp so post-fail-over
  // writes remain ABA-safe.
  part->next_stamp = max_stamp;
  return Status::OK();
}

Status StorageNode::ApplyReplicatedPut(TableId table, uint32_t partition,
                                       std::string_view key,
                                       std::string_view value,
                                       uint64_t stamp) {
  TELL_RETURN_NOT_OK(CheckAlive());
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  std::unique_lock lock(part->mutex);
  auto it = part->cells.find(key);
  if (it == part->cells.end()) {
    memory_used_.fetch_add(key.size() + value.size() + sizeof(VersionedCell),
                           std::memory_order_relaxed);
    part->cells.emplace(std::string(key),
                        VersionedCell{std::string(value), stamp});
  } else {
    it->second.value.assign(value);
    it->second.stamp = stamp;
  }
  if (stamp >= part->next_stamp) part->next_stamp = stamp + 1;
  return Status::OK();
}

Status StorageNode::ApplyReplicatedErase(TableId table, uint32_t partition,
                                         std::string_view key) {
  TELL_RETURN_NOT_OK(CheckAlive());
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  std::unique_lock lock(part->mutex);
  auto it = part->cells.find(key);
  if (it != part->cells.end()) {
    memory_used_.fetch_sub(key.size() + it->second.value.size() +
                               sizeof(VersionedCell),
                           std::memory_order_relaxed);
    part->cells.erase(it);
  }
  return Status::OK();
}

size_t StorageNode::PartitionSize(TableId table, uint32_t partition) const {
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return 0;
  std::shared_lock lock(part->mutex);
  return part->cells.size();
}

}  // namespace tell::store
