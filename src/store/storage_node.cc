#include "store/storage_node.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>

#include "common/logging.h"
#include "common/serde.h"
#include "store/record_cache.h"

namespace tell::store {

namespace {

uint32_t RoundUpPowerOfTwo(uint32_t n) {
  if (n <= 1) return 1;
  uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

StorageNode::StorageNode(uint32_t node_id, uint64_t memory_capacity_bytes,
                         uint32_t stripes_per_partition)
    : node_id_(node_id),
      memory_capacity_(memory_capacity_bytes),
      stripes_per_partition_(RoundUpPowerOfTwo(stripes_per_partition)) {}

void StorageNode::CreatePartition(TableId table, uint32_t partition) {
  std::unique_lock lock(partitions_mutex_);
  uint64_t key = PartitionKey(table, partition);
  if (partitions_.find(key) == partitions_.end()) {
    partitions_.emplace(key,
                        std::make_unique<Partition>(stripes_per_partition_));
  }
}

StorageNode::Partition* StorageNode::FindPartition(TableId table,
                                                   uint32_t partition) const {
  std::shared_lock lock(partitions_mutex_);
  auto it = partitions_.find(PartitionKey(table, partition));
  return it == partitions_.end() ? nullptr : it->second.get();
}

void StorageNode::BumpLeaseEpoch(TableId table, uint32_t partition) const {
  // Ordering contract (see LeaseEpochTable): the bump happens after the
  // cell mutation, inside the same stripe-exclusive critical section, so a
  // cache probe that still observes the pre-bump epoch is guaranteed the
  // store has not changed since the probe's fill fetched it.
  if (lease_epochs_ != nullptr) lease_epochs_->Bump(table, partition);
}

Status StorageNode::CheckAlive() const {
  if (!alive()) {
    return Status::Unavailable("storage node " + std::to_string(node_id_) +
                               " is down");
  }
  return Status::OK();
}

std::shared_lock<std::shared_mutex> StorageNode::LockShared(
    const Stripe& stripe) const {
  std::shared_lock<std::shared_mutex> lock(stripe.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    stats_.stripe_conflicts.fetch_add(1, std::memory_order_relaxed);
    uint64_t start = MonotonicNowNs();
    lock.lock();
    stats_.lock_wait_ns.fetch_add(MonotonicNowNs() - start,
                                  std::memory_order_relaxed);
  }
  return lock;
}

std::unique_lock<std::shared_mutex> StorageNode::LockExclusive(
    const Stripe& stripe) const {
  std::unique_lock<std::shared_mutex> lock(stripe.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    stats_.stripe_conflicts.fetch_add(1, std::memory_order_relaxed);
    uint64_t start = MonotonicNowNs();
    lock.lock();
    stats_.lock_wait_ns.fetch_add(MonotonicNowNs() - start,
                                  std::memory_order_relaxed);
  }
  return lock;
}

std::vector<std::shared_lock<std::shared_mutex>> StorageNode::LockAllShared(
    const Partition& part) const {
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(part.stripes.size());
  for (const Stripe& stripe : part.stripes) {
    locks.push_back(LockShared(stripe));
  }
  return locks;
}

std::vector<std::unique_lock<std::shared_mutex>> StorageNode::LockAllExclusive(
    const Partition& part) const {
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(part.stripes.size());
  for (const Stripe& stripe : part.stripes) {
    locks.push_back(LockExclusive(stripe));
  }
  return locks;
}

template <typename Emit>
void StorageNode::MergeScan(const Partition& part, std::string_view start_key,
                            std::string_view end_key, bool reverse,
                            Emit&& emit) {
  using Iter =
      std::map<std::string, VersionedCell, std::less<>>::const_iterator;
  const size_t n = part.stripes.size();
  std::vector<Iter> lo(n), hi(n), cur(n);
  for (size_t s = 0; s < n; ++s) {
    const auto& cells = part.stripes[s].cells;
    lo[s] = cells.lower_bound(start_key);
    hi[s] = end_key.empty() ? cells.end() : cells.lower_bound(end_key);
  }
  // Linear min/max pick across the per-stripe runs. Stripe counts are small
  // (<= a few dozen), so this beats a heap in both simplicity and constant
  // factor; with one stripe it degenerates to the old single-map walk.
  if (!reverse) {
    cur = lo;
    for (;;) {
      size_t best = n;
      for (size_t s = 0; s < n; ++s) {
        if (cur[s] == hi[s]) continue;
        if (best == n || cur[s]->first < cur[best]->first) best = s;
      }
      if (best == n) return;
      if (!emit(cur[best]->first, cur[best]->second)) return;
      ++cur[best];
    }
  } else {
    cur = hi;  // cur[s] is one past the next cell to emit from stripe s
    for (;;) {
      size_t best = n;
      for (size_t s = 0; s < n; ++s) {
        if (cur[s] == lo[s]) continue;
        if (best == n ||
            std::prev(cur[s])->first > std::prev(cur[best])->first) {
          best = s;
        }
      }
      if (best == n) return;
      Iter pick = std::prev(cur[best]);
      if (!emit(pick->first, pick->second)) return;
      cur[best] = pick;
    }
  }
}

Result<VersionedCell> StorageNode::Get(TableId table, uint32_t partition,
                                       std::string_view key) const {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  const Stripe& stripe = part->StripeOf(key);
  auto lock = LockShared(stripe);
  auto it = stripe.cells.find(key);
  if (it == stripe.cells.end()) return Status::NotFound();
  return it->second;
}

Result<VersionedCell> StorageNode::OneSidedRead(TableId table,
                                                uint32_t partition,
                                                std::string_view key) const {
  // Same lookup as Get, but no stats_.gets: the node's CPU never handles an
  // RDMA READ, so it must not show up in the store.node.* request gauges.
  // (The stripe lock stands in for the DMA engine's cache-coherent access;
  // the *virtual* cost model on the client side charges no server time.)
  TELL_RETURN_NOT_OK(CheckAlive());
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  const Stripe& stripe = part->StripeOf(key);
  auto lock = LockShared(stripe);
  auto it = stripe.cells.find(key);
  if (it == stripe.cells.end()) return Status::NotFound();
  return it->second;
}

Result<uint64_t> StorageNode::Put(TableId table, uint32_t partition,
                                  std::string_view key,
                                  std::string_view value) {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  Stripe& stripe = part->StripeOf(key);
  auto lock = LockExclusive(stripe);
  if (part->sealed.load(std::memory_order_relaxed)) {
    return Status::Unavailable("partition sealed for migration");
  }
  auto it = stripe.cells.find(key);
  uint64_t stamp = part->next_stamp.fetch_add(1, std::memory_order_relaxed);
  if (it == stripe.cells.end()) {
    uint64_t bytes = key.size() + value.size() + sizeof(VersionedCell);
    if (memory_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes >
        memory_capacity_) {
      memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
      return Status::CapacityExceeded("storage node " +
                                      std::to_string(node_id_) + " is full");
    }
    stripe.cells.emplace(std::string(key),
                         VersionedCell{std::string(value), stamp});
  } else {
    int64_t delta = static_cast<int64_t>(value.size()) -
                    static_cast<int64_t>(it->second.value.size());
    memory_used_.fetch_add(static_cast<uint64_t>(delta),
                           std::memory_order_relaxed);
    it->second.value.assign(value);
    it->second.stamp = stamp;
  }
  BumpLeaseEpoch(table, partition);
  return stamp;
}

Result<uint64_t> StorageNode::ConditionalPut(TableId table, uint32_t partition,
                                             std::string_view key,
                                             uint64_t expected_stamp,
                                             std::string_view value) {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.conditional_puts.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  Stripe& stripe = part->StripeOf(key);
  auto lock = LockExclusive(stripe);
  if (part->sealed.load(std::memory_order_relaxed)) {
    return Status::Unavailable("partition sealed for migration");
  }
  auto it = stripe.cells.find(key);
  uint64_t current = it == stripe.cells.end() ? kStampAbsent : it->second.stamp;
  if (current != expected_stamp) {
    stats_.llsc_failures.fetch_add(1, std::memory_order_relaxed);
    return Status::ConditionFailed("stamp mismatch: expected " +
                                   std::to_string(expected_stamp) + ", have " +
                                   std::to_string(current));
  }
  uint64_t stamp = part->next_stamp.fetch_add(1, std::memory_order_relaxed);
  if (it == stripe.cells.end()) {
    uint64_t bytes = key.size() + value.size() + sizeof(VersionedCell);
    if (memory_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes >
        memory_capacity_) {
      memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
      return Status::CapacityExceeded("storage node " +
                                      std::to_string(node_id_) + " is full");
    }
    stripe.cells.emplace(std::string(key),
                         VersionedCell{std::string(value), stamp});
  } else {
    int64_t delta = static_cast<int64_t>(value.size()) -
                    static_cast<int64_t>(it->second.value.size());
    memory_used_.fetch_add(static_cast<uint64_t>(delta),
                           std::memory_order_relaxed);
    it->second.value.assign(value);
    it->second.stamp = stamp;
  }
  BumpLeaseEpoch(table, partition);
  return stamp;
}

Status StorageNode::ConditionalErase(TableId table, uint32_t partition,
                                     std::string_view key,
                                     uint64_t expected_stamp) {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.erases.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  Stripe& stripe = part->StripeOf(key);
  auto lock = LockExclusive(stripe);
  if (part->sealed.load(std::memory_order_relaxed)) {
    return Status::Unavailable("partition sealed for migration");
  }
  auto it = stripe.cells.find(key);
  if (it == stripe.cells.end()) return Status::NotFound();
  if (it->second.stamp != expected_stamp) {
    stats_.llsc_failures.fetch_add(1, std::memory_order_relaxed);
    return Status::ConditionFailed();
  }
  memory_used_.fetch_sub(key.size() + it->second.value.size() +
                             sizeof(VersionedCell),
                         std::memory_order_relaxed);
  stripe.cells.erase(it);
  JournalEraseLocked(part, key);
  BumpLeaseEpoch(table, partition);
  return Status::OK();
}

Status StorageNode::Erase(TableId table, uint32_t partition,
                          std::string_view key) {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.erases.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  Stripe& stripe = part->StripeOf(key);
  auto lock = LockExclusive(stripe);
  if (part->sealed.load(std::memory_order_relaxed)) {
    return Status::Unavailable("partition sealed for migration");
  }
  auto it = stripe.cells.find(key);
  if (it == stripe.cells.end()) return Status::NotFound();
  memory_used_.fetch_sub(key.size() + it->second.value.size() +
                             sizeof(VersionedCell),
                         std::memory_order_relaxed);
  stripe.cells.erase(it);
  JournalEraseLocked(part, key);
  BumpLeaseEpoch(table, partition);
  return Status::OK();
}

Result<std::vector<KeyCell>> StorageNode::Scan(TableId table,
                                               uint32_t partition,
                                               std::string_view start_key,
                                               std::string_view end_key,
                                               size_t limit,
                                               bool reverse) const {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.scans.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  auto locks = LockAllShared(*part);
  size_t total = 0;
  for (const Stripe& stripe : part->stripes) total += stripe.cells.size();
  std::vector<KeyCell> out;
  if (limit != 0) {
    out.reserve(std::min(limit, total));
  } else if (start_key.empty() && end_key.empty()) {
    out.reserve(total);  // full walk (log replay, bootstrap): exact size
  }
  MergeScan(*part, start_key, end_key, reverse,
            [&](const std::string& key, const VersionedCell& cell) {
              out.push_back({key, cell.value, cell.stamp});
              return limit == 0 || out.size() < limit;
            });
  stats_.cells_scanned.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

Result<std::vector<KeyCell>> StorageNode::ScanFiltered(
    TableId table, uint32_t partition, std::string_view start_key,
    std::string_view end_key, size_t limit,
    const std::function<bool(std::string_view, std::string_view, std::string*)>&
        transform,
    uint64_t* scanned) const {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.scans.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  auto locks = LockAllShared(*part);
  std::vector<KeyCell> out;
  if (limit != 0) out.reserve(limit);
  uint64_t examined = 0;
  std::string shipped;
  MergeScan(*part, start_key, end_key, /*reverse=*/false,
            [&](const std::string& key, const VersionedCell& cell) {
              ++examined;
              shipped.clear();
              if (!transform(key, cell.value, &shipped)) return true;
              out.push_back({key, std::move(shipped), cell.stamp});
              return limit == 0 || out.size() < limit;
            });
  if (scanned != nullptr) *scanned += examined;
  stats_.cells_scanned.fetch_add(examined, std::memory_order_relaxed);
  return out;
}

Status StorageNode::FragmentScan(TableId table, uint32_t partition,
                                 size_t chunk_cells, FragmentSink* sink,
                                 FragmentScanStats* stats) const {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.scans.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  if (chunk_cells == 0) chunk_cells = 1;

  // Chunked pass: copy up to chunk_cells raw cells out under the stripe
  // locks, release the locks, then run the sink's decode/filter/fold over
  // the copies. The cursor (last key + '\0') restarts the merge just past
  // the previous chunk; MVCC version lists keep the result
  // snapshot-consistent across the release (tombstones, not erases, encode
  // deletes for MVCC tables).
  std::string cursor;
  bool more = true;
  bool keep_going = true;
  FragmentScanStats local;
  std::vector<std::pair<std::string, std::string>> batch;
  batch.reserve(chunk_cells);
  while (more && keep_going) {
    batch.clear();
    {
      auto locks = LockAllShared(*part);
      more = false;
      MergeScan(*part, cursor, "", /*reverse=*/false,
                [&](const std::string& key, const VersionedCell& cell) {
                  if (batch.size() == chunk_cells) {
                    more = true;  // at least one cell past this chunk
                    return false;
                  }
                  batch.emplace_back(key, cell.value);
                  return true;
                });
    }
    if (more) ++local.chunk_lock_releases;
    local.cells_scanned += batch.size();
    for (const auto& [key, value] : batch) {
      if (!sink->Absorb(key, value)) {
        keep_going = false;
        break;
      }
    }
    if (more && !batch.empty()) {
      cursor = batch.back().first;
      cursor.push_back('\0');
    }
  }
  stats_.cells_scanned.fetch_add(local.cells_scanned,
                                 std::memory_order_relaxed);
  if (stats != nullptr) stats->Accumulate(local);
  return sink->status();
}

Result<int64_t> StorageNode::AtomicIncrement(TableId table, uint32_t partition,
                                             std::string_view key,
                                             int64_t delta) {
  TELL_RETURN_NOT_OK(CheckAlive());
  stats_.atomic_increments.fetch_add(1, std::memory_order_relaxed);
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  Stripe& stripe = part->StripeOf(key);
  auto lock = LockExclusive(stripe);
  if (part->sealed.load(std::memory_order_relaxed)) {
    return Status::Unavailable("partition sealed for migration");
  }
  auto it = stripe.cells.find(key);
  int64_t current = 0;
  if (it != stripe.cells.end() && it->second.value.size() == sizeof(int64_t)) {
    std::memcpy(&current, it->second.value.data(), sizeof(int64_t));
  }
  int64_t updated = current + delta;
  std::string encoded(sizeof(int64_t), '\0');
  std::memcpy(encoded.data(), &updated, sizeof(int64_t));
  uint64_t stamp = part->next_stamp.fetch_add(1, std::memory_order_relaxed);
  if (it == stripe.cells.end()) {
    memory_used_.fetch_add(key.size() + encoded.size() + sizeof(VersionedCell),
                           std::memory_order_relaxed);
    stripe.cells.emplace(std::string(key), VersionedCell{encoded, stamp});
  } else {
    it->second.value = encoded;
    it->second.stamp = stamp;
  }
  BumpLeaseEpoch(table, partition);
  return updated;
}

Result<std::vector<KeyCell>> StorageNode::DumpPartition(
    TableId table, uint32_t partition) const {
  // Intentionally works on a dead node: fail-over needs to read the replica
  // copies hosted on the *surviving* nodes, and tests also use it to verify
  // what a crashed node held.
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  auto locks = LockAllShared(*part);
  size_t total = 0;
  for (const Stripe& stripe : part->stripes) total += stripe.cells.size();
  std::vector<KeyCell> out;
  out.reserve(total);
  MergeScan(*part, "", "", /*reverse=*/false,
            [&](const std::string& key, const VersionedCell& cell) {
              out.push_back({key, cell.value, cell.stamp});
              return true;
            });
  return out;
}

void StorageNode::JournalEraseLocked(Partition* part, std::string_view key) {
  if (!part->migration_logging.load(std::memory_order_relaxed)) return;
  // The journal stamp is drawn from the same counter as write stamps, inside
  // the stripe's exclusive section: a later re-insert of the key necessarily
  // gets a higher stamp, so the stamp-guarded delta apply orders them.
  uint64_t stamp = part->next_stamp.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> jlock(part->journal_mutex);
  part->erase_journal.push_back({std::string(key), "", stamp, true});
}

Status StorageNode::BeginMigrationLogging(TableId table, uint32_t partition) {
  TELL_RETURN_NOT_OK(CheckAlive());
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  // All stripes exclusive: every erase either completed before this point
  // (its absence is part of the initial dump) or starts after and sees the
  // flag.
  auto locks = LockAllExclusive(*part);
  std::lock_guard<std::mutex> jlock(part->journal_mutex);
  part->erase_journal.clear();
  part->migration_logging.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status StorageNode::EndMigrationLogging(TableId table, uint32_t partition) {
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  auto locks = LockAllExclusive(*part);
  std::lock_guard<std::mutex> jlock(part->journal_mutex);
  part->migration_logging.store(false, std::memory_order_relaxed);
  part->erase_journal.clear();
  return Status::OK();
}

Result<uint64_t> StorageNode::PartitionNextStamp(TableId table,
                                                 uint32_t partition) const {
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  return part->next_stamp.load(std::memory_order_acquire);
}

Result<std::vector<KeyCell>> StorageNode::DumpPartitionSince(
    TableId table, uint32_t partition, uint64_t min_stamp) const {
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  auto locks = LockAllShared(*part);
  std::vector<KeyCell> out;
  MergeScan(*part, "", "", /*reverse=*/false,
            [&](const std::string& key, const VersionedCell& cell) {
              if (cell.stamp >= min_stamp) {
                out.push_back({key, cell.value, cell.stamp});
              }
              return true;
            });
  return out;
}

Result<std::vector<MigrationOp>> StorageNode::ErasesSince(
    TableId table, uint32_t partition, uint64_t min_stamp) const {
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  std::lock_guard<std::mutex> jlock(part->journal_mutex);
  std::vector<MigrationOp> out;
  for (const MigrationOp& op : part->erase_journal) {
    if (op.stamp >= min_stamp) out.push_back(op);
  }
  return out;
}

Result<std::vector<MigrationOp>> StorageNode::SealPartitionAndDump(
    TableId table, uint32_t partition, uint64_t min_stamp) {
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  auto locks = LockAllExclusive(*part);
  // In-flight writes finished before we got every lock; from here on no
  // write can slip in between the final delta and the seal.
  part->sealed.store(true, std::memory_order_relaxed);
  std::vector<MigrationOp> out;
  MergeScan(*part, "", "", /*reverse=*/false,
            [&](const std::string& key, const VersionedCell& cell) {
              if (cell.stamp >= min_stamp) {
                out.push_back({key, cell.value, cell.stamp, false});
              }
              return true;
            });
  {
    std::lock_guard<std::mutex> jlock(part->journal_mutex);
    for (const MigrationOp& op : part->erase_journal) {
      if (op.stamp >= min_stamp) out.push_back(op);
    }
    part->erase_journal.clear();
    part->migration_logging.store(false, std::memory_order_relaxed);
  }
  std::sort(out.begin(), out.end(),
            [](const MigrationOp& a, const MigrationOp& b) {
              return a.stamp < b.stamp;
            });
  return out;
}

Status StorageNode::InstallMigrationDelta(TableId table, uint32_t partition,
                                          const std::vector<MigrationOp>& ops,
                                          uint64_t* erases_applied) {
  TELL_RETURN_NOT_OK(CheckAlive());
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  auto locks = LockAllExclusive(*part);
  uint64_t max_stamp = 0;
  for (const MigrationOp& op : ops) {
    Stripe& stripe = part->StripeOf(op.key);
    auto it = stripe.cells.find(op.key);
    max_stamp = std::max(max_stamp, op.stamp);
    // Stamp guard: only apply over strictly older state. Replayed ops from
    // an overlapping delta round hit equal stamps and no-op.
    if (op.is_erase) {
      if (it == stripe.cells.end() || it->second.stamp >= op.stamp) continue;
      memory_used_.fetch_sub(op.key.size() + it->second.value.size() +
                                 sizeof(VersionedCell),
                             std::memory_order_relaxed);
      stripe.cells.erase(it);
      if (erases_applied != nullptr) ++*erases_applied;
    } else {
      if (it == stripe.cells.end()) {
        memory_used_.fetch_add(op.key.size() + op.value.size() +
                                   sizeof(VersionedCell),
                               std::memory_order_relaxed);
        stripe.cells.emplace(op.key, VersionedCell{op.value, op.stamp});
      } else if (it->second.stamp < op.stamp) {
        int64_t delta = static_cast<int64_t>(op.value.size()) -
                        static_cast<int64_t>(it->second.value.size());
        memory_used_.fetch_add(static_cast<uint64_t>(delta),
                               std::memory_order_relaxed);
        it->second.value = op.value;
        it->second.stamp = op.stamp;
      }
    }
  }
  part->AdvanceStampPast(max_stamp);
  BumpLeaseEpoch(table, partition);
  return Status::OK();
}

Status StorageNode::InstallPartition(TableId table, uint32_t partition,
                                     const std::vector<KeyCell>& cells) {
  TELL_RETURN_NOT_OK(CheckAlive());
  CreatePartition(table, partition);
  Partition* part = FindPartition(table, partition);
  auto locks = LockAllExclusive(*part);
  // A reinstall supersedes any migration state left on this copy.
  part->sealed.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> jlock(part->journal_mutex);
    part->migration_logging.store(false, std::memory_order_relaxed);
    part->erase_journal.clear();
  }
  uint64_t max_stamp = 0;
  for (const KeyCell& cell : cells) {
    Stripe& stripe = part->StripeOf(cell.key);
    auto [it, inserted] = stripe.cells.insert_or_assign(
        cell.key, VersionedCell{cell.value, cell.stamp});
    if (inserted) {
      memory_used_.fetch_add(cell.key.size() + cell.value.size() +
                                 sizeof(VersionedCell),
                             std::memory_order_relaxed);
    }
    max_stamp = std::max(max_stamp, cell.stamp);
  }
  // Keep the stamp source ahead of every installed stamp so post-fail-over
  // writes remain ABA-safe.
  part->AdvanceStampPast(max_stamp);
  BumpLeaseEpoch(table, partition);
  return Status::OK();
}

Status StorageNode::ApplyReplicatedPut(TableId table, uint32_t partition,
                                       std::string_view key,
                                       std::string_view value,
                                       uint64_t stamp) {
  TELL_RETURN_NOT_OK(CheckAlive());
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  Stripe& stripe = part->StripeOf(key);
  auto lock = LockExclusive(stripe);
  auto it = stripe.cells.find(key);
  if (it == stripe.cells.end()) {
    memory_used_.fetch_add(key.size() + value.size() + sizeof(VersionedCell),
                           std::memory_order_relaxed);
    stripe.cells.emplace(std::string(key),
                         VersionedCell{std::string(value), stamp});
  } else {
    it->second.value.assign(value);
    it->second.stamp = stamp;
  }
  part->AdvanceStampPast(stamp);
  BumpLeaseEpoch(table, partition);
  return Status::OK();
}

Status StorageNode::ApplyReplicatedErase(TableId table, uint32_t partition,
                                         std::string_view key) {
  TELL_RETURN_NOT_OK(CheckAlive());
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return Status::NotFound("no such partition");
  Stripe& stripe = part->StripeOf(key);
  auto lock = LockExclusive(stripe);
  auto it = stripe.cells.find(key);
  if (it != stripe.cells.end()) {
    memory_used_.fetch_sub(key.size() + it->second.value.size() +
                               sizeof(VersionedCell),
                           std::memory_order_relaxed);
    stripe.cells.erase(it);
  }
  BumpLeaseEpoch(table, partition);
  return Status::OK();
}

size_t StorageNode::PartitionSize(TableId table, uint32_t partition) const {
  Partition* part = FindPartition(table, partition);
  if (part == nullptr) return 0;
  auto locks = LockAllShared(*part);
  size_t total = 0;
  for (const Stripe& stripe : part->stripes) total += stripe.cells.size();
  return total;
}

}  // namespace tell::store
