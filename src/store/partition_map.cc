#include "store/partition_map.h"

#include <algorithm>
#include <mutex>

namespace tell::store {

uint64_t PartitionMap::HashKey(std::string_view key) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : key) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

Status PartitionMap::AddTable(TableId table, uint32_t num_partitions,
                              const std::vector<uint32_t>& node_ids,
                              uint32_t replication_factor) {
  if (num_partitions == 0 || node_ids.empty()) {
    return Status::InvalidArgument("table needs partitions and nodes");
  }
  if (replication_factor == 0 || replication_factor > node_ids.size()) {
    return Status::InvalidArgument(
        "replication factor must be in [1, num nodes]");
  }
  std::unique_lock lock(mutex_);
  if (tables_.find(table) != tables_.end()) {
    return Status::AlreadyExists("table already mapped");
  }
  TableInfo info;
  info.num_partitions = num_partitions;
  info.placements.resize(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    PartitionPlacement& placement = info.placements[p];
    placement.master = node_ids[p % node_ids.size()];
    for (uint32_t r = 1; r < replication_factor; ++r) {
      placement.replicas.push_back(node_ids[(p + r) % node_ids.size()]);
    }
  }
  tables_.emplace(table, std::move(info));
  ++version_;
  return Status::OK();
}

Result<uint32_t> PartitionMap::PartitionFor(TableId table,
                                            std::string_view key) const {
  std::shared_lock lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table not mapped");
  return static_cast<uint32_t>(HashKey(key) % it->second.num_partitions);
}

Result<uint32_t> PartitionMap::NumPartitions(TableId table) const {
  std::shared_lock lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table not mapped");
  return it->second.num_partitions;
}

Result<PartitionPlacement> PartitionMap::PlacementOf(TableId table,
                                                     uint32_t partition) const {
  std::shared_lock lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table not mapped");
  if (partition >= it->second.num_partitions) {
    return Status::InvalidArgument("partition out of range");
  }
  return it->second.placements[partition];
}

Status PartitionMap::PromoteReplica(TableId table, uint32_t partition,
                                    uint32_t new_master) {
  std::unique_lock lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table not mapped");
  if (partition >= it->second.num_partitions) {
    return Status::InvalidArgument("partition out of range");
  }
  PartitionPlacement& placement = it->second.placements[partition];
  auto rit = std::find(placement.replicas.begin(), placement.replicas.end(),
                       new_master);
  if (rit == placement.replicas.end()) {
    return Status::InvalidArgument("node is not a replica of this partition");
  }
  placement.replicas.erase(rit);
  placement.master = new_master;
  ++version_;
  return Status::OK();
}

Status PartitionMap::AddReplica(TableId table, uint32_t partition,
                                uint32_t node_id) {
  std::unique_lock lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table not mapped");
  if (partition >= it->second.num_partitions) {
    return Status::InvalidArgument("partition out of range");
  }
  PartitionPlacement& placement = it->second.placements[partition];
  if (placement.master == node_id ||
      std::find(placement.replicas.begin(), placement.replicas.end(),
                node_id) != placement.replicas.end()) {
    return Status::AlreadyExists("node already hosts this partition");
  }
  placement.replicas.push_back(node_id);
  ++version_;
  return Status::OK();
}

Status PartitionMap::FreezeWrites(TableId table, uint32_t partition) {
  std::unique_lock lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table not mapped");
  if (partition >= it->second.num_partitions) {
    return Status::InvalidArgument("partition out of range");
  }
  it->second.placements[partition].write_frozen = true;
  ++version_;
  return Status::OK();
}

Status PartitionMap::UnfreezeWrites(TableId table, uint32_t partition) {
  std::unique_lock lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table not mapped");
  if (partition >= it->second.num_partitions) {
    return Status::InvalidArgument("partition out of range");
  }
  it->second.placements[partition].write_frozen = false;
  ++version_;
  return Status::OK();
}

Status PartitionMap::MovePartitionMaster(TableId table, uint32_t partition,
                                         uint32_t new_master) {
  std::unique_lock lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table not mapped");
  if (partition >= it->second.num_partitions) {
    return Status::InvalidArgument("partition out of range");
  }
  PartitionPlacement& placement = it->second.placements[partition];
  if (placement.master == new_master) {
    return Status::InvalidArgument("node is already the master");
  }
  placement.replicas.erase(std::remove(placement.replicas.begin(),
                                       placement.replicas.end(), new_master),
                           placement.replicas.end());
  placement.master = new_master;
  ++version_;
  return Status::OK();
}

std::vector<std::pair<TableId, uint32_t>> PartitionMap::RemoveNode(
    uint32_t node_id) {
  std::unique_lock lock(mutex_);
  std::vector<std::pair<TableId, uint32_t>> orphaned_masters;
  for (auto& [table, info] : tables_) {
    for (uint32_t p = 0; p < info.num_partitions; ++p) {
      PartitionPlacement& placement = info.placements[p];
      if (placement.master == node_id) {
        orphaned_masters.emplace_back(table, p);
      }
      placement.replicas.erase(std::remove(placement.replicas.begin(),
                                           placement.replicas.end(), node_id),
                               placement.replicas.end());
    }
  }
  ++version_;
  return orphaned_masters;
}

uint64_t PartitionMap::version() const {
  std::shared_lock lock(mutex_);
  return version_;
}

std::vector<std::pair<TableId, uint32_t>> PartitionMap::AllPartitions() const {
  std::shared_lock lock(mutex_);
  std::vector<std::pair<TableId, uint32_t>> out;
  for (const auto& [table, info] : tables_) {
    for (uint32_t p = 0; p < info.num_partitions; ++p) out.emplace_back(table, p);
  }
  return out;
}

}  // namespace tell::store
