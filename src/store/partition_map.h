#ifndef TELL_STORE_PARTITION_MAP_H_
#define TELL_STORE_PARTITION_MAP_H_

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "store/storage_node.h"

namespace tell::store {

/// Placement of one table partition: the master copy plus RF-1 backups.
struct PartitionPlacement {
  uint32_t master = 0;
  std::vector<uint32_t> replicas;  // backup node ids, excludes master
  /// Writes are fenced off (Unavailable, clients retry) — the cut-over
  /// window of a live migration. Reads stay allowed: the data is static
  /// while frozen.
  bool write_frozen = false;
};

/// The lookup service of the storage layer (paper §2.1: "a mechanism is
/// provided to retrieve data location ... that enables the processing nodes
/// to directly contact the storage node holding the required data").
///
/// The key space of each table is split into a fixed number of partitions by
/// hashing the key into a 64-bit space that is range-partitioned — the same
/// scheme RamCloud uses for its tables. Each partition has a master copy and
/// RF-1 synchronously maintained backups on distinct nodes.
///
/// Processing nodes cache this map; it only changes on fail-over or
/// elasticity events, at which point the map's version counter bumps and
/// clients refresh.
class PartitionMap {
 public:
  PartitionMap() = default;

  /// Registers a table spread over `num_partitions` partitions on the given
  /// nodes with the given replication factor. Masters round-robin across
  /// nodes; replicas go to the following nodes.
  Status AddTable(TableId table, uint32_t num_partitions,
                  const std::vector<uint32_t>& node_ids,
                  uint32_t replication_factor);

  /// Partition index that owns `key` within `table`.
  Result<uint32_t> PartitionFor(TableId table, std::string_view key) const;

  Result<uint32_t> NumPartitions(TableId table) const;

  /// Current placement of a table partition.
  Result<PartitionPlacement> PlacementOf(TableId table,
                                         uint32_t partition) const;

  /// Promotes `new_master` (must be a current replica) to master of the
  /// partition, removing it from the replica list. Used on fail-over.
  Status PromoteReplica(TableId table, uint32_t partition,
                        uint32_t new_master);

  /// Adds a backup node to a partition (re-replication after a failure).
  Status AddReplica(TableId table, uint32_t partition, uint32_t node_id);

  /// Fences writes to one partition (live-migration cut-over; see
  /// docs/RECOVERY.md). Routed writes fail Unavailable until unfrozen and
  /// retry through the client RetryPolicy.
  Status FreezeWrites(TableId table, uint32_t partition);
  Status UnfreezeWrites(TableId table, uint32_t partition);

  /// Re-points a partition's master at `new_master` (live migration
  /// cut-over). Unlike PromoteReplica, `new_master` need not be a current
  /// replica — the migration just copied the data onto it — and the OLD
  /// master is dropped from the placement entirely (its copy stays sealed
  /// on the source node).
  Status MovePartitionMaster(TableId table, uint32_t partition,
                             uint32_t new_master);

  /// Removes a (dead) node from every placement it appears in. Returns the
  /// list of partitions that lost their *master* copy and need promotion.
  std::vector<std::pair<TableId, uint32_t>> RemoveNode(uint32_t node_id);

  /// Bumped on every placement change; clients compare against their cached
  /// copy to know when to refresh.
  uint64_t version() const;

  /// All (table, partition) pairs currently mapped (management / tests).
  std::vector<std::pair<TableId, uint32_t>> AllPartitions() const;

  /// 64-bit FNV-1a; exposed so tests can verify placement determinism.
  static uint64_t HashKey(std::string_view key);

 private:
  struct TableInfo {
    uint32_t num_partitions = 0;
    std::vector<PartitionPlacement> placements;
  };

  mutable std::shared_mutex mutex_;
  std::map<TableId, TableInfo> tables_;
  uint64_t version_ = 1;
};

}  // namespace tell::store

#endif  // TELL_STORE_PARTITION_MAP_H_
