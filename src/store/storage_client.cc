#include "store/storage_client.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace tell::store {

namespace {
// Fixed wire framing per logical op inside a request (op code, table id,
// lengths).
constexpr uint64_t kPerOpHeaderBytes = 16;
// Fixed framing per request (rpc header).
constexpr uint64_t kPerRequestHeaderBytes = 32;
}  // namespace

void StorageClient::ChargeRequest(uint64_t request_bytes,
                                  uint64_t response_bytes) {
  clock_->Advance(options_.network.RequestCost(
      request_bytes + kPerRequestHeaderBytes, response_bytes));
  metrics_->storage_requests += 1;
  metrics_->bytes_sent += request_bytes + kPerRequestHeaderBytes;
  metrics_->bytes_received += response_bytes;
}

void StorageClient::ChargeParallelRequests(
    const std::vector<std::pair<uint64_t, uint64_t>>& per_request_bytes) {
  uint64_t max_cost = 0;
  for (const auto& [req, resp] : per_request_bytes) {
    max_cost = std::max(max_cost, options_.network.RequestCost(
                                      req + kPerRequestHeaderBytes, resp));
    metrics_->storage_requests += 1;
    metrics_->bytes_sent += req + kPerRequestHeaderBytes;
    metrics_->bytes_received += resp;
  }
  clock_->Advance(max_cost);
}

void StorageClient::ChargeReplication(uint64_t num_writes) {
  // Synchronous replication: the master does not acknowledge until the
  // backups have the write. Replication of the writes inside one request is
  // processed per record on the master (RamCloud forwards each object to
  // its backups and waits for the ack before acknowledging the client), so
  // the charge scales with the number of written records times the backup
  // chain length. The factor 2 covers the backup's write path (forward +
  // log append + ack), which measured RamCloud numbers put at roughly two
  // round-trip equivalents per backup.
  constexpr uint64_t kBackupWritePathFactor = 2;
  clock_->Advance(num_writes * kBackupWritePathFactor *
                  static_cast<uint64_t>(options_.replication_extra_hops) *
                  (options_.network.base_rtt_ns +
                   options_.network.software_overhead_ns));
}

uint64_t StorageClient::LeaseEpochOf(TableId table,
                                     std::string_view key) const {
  auto partition = cluster_->partition_map().PartitionFor(table, key);
  if (!partition.ok()) return 0;
  return cluster_->lease_epochs().Epoch(table, *partition);
}

bool StorageClient::CacheProbe(TableId table, std::string_view key,
                               VersionedCell* out) {
  if (options_.record_cache == nullptr) return false;
  // Sampling the epoch *now* and requiring the entry's fill epoch to match
  // makes the hit byte-identical to a fresh fetch at this instant — the
  // read's linearization point (store/record_cache.h has the proof).
  uint64_t epoch = LeaseEpochOf(table, key);
  if (options_.record_cache->Get(table, key, epoch, out)) {
    metrics_->cache_hits += 1;
    return true;
  }
  metrics_->cache_misses += 1;
  return false;
}

void StorageClient::CacheFill(TableId table, std::string_view key,
                              const VersionedCell& cell, uint64_t fill_epoch) {
  if (options_.record_cache == nullptr) return;
  options_.record_cache->Put(table, key, cell, fill_epoch);
}

void StorageClient::ChargeOneSidedRead(uint64_t request_bytes,
                                       uint64_t response_bytes) {
  clock_->Advance(
      options_.network.OneSidedReadCost(request_bytes, response_bytes));
  metrics_->storage_requests += 1;
  metrics_->bytes_sent += request_bytes;
  metrics_->bytes_received += response_bytes;
}

std::optional<Result<VersionedCell>> StorageClient::OneSidedFetch(
    TableId table, std::string_view key, uint64_t* fill_epoch,
    uint64_t* response_bytes) {
  // Seqlock-style validation: sample the partition's lease epoch, fetch the
  // raw cell, re-sample. An unchanged epoch proves no write raced the fetch
  // (every write bumps the epoch after mutating, inside its critical
  // section), so the bytes are exactly what a two-sided Get would return.
  uint64_t e0 = LeaseEpochOf(table, key);
  if (options_.fault_injector != nullptr) {
    sim::FaultInjector::Decision d = options_.fault_injector->OnRequest(
        sim::FaultOpClass::kOneSidedGet, table);
    if (d.kill_node >= 0 &&
        d.kill_node < static_cast<int64_t>(cluster_->num_nodes())) {
      cluster_->node(static_cast<uint32_t>(d.kill_node))->Kill();
    }
    if (d.extra_latency_ns > 0) clock_->Advance(d.extra_latency_ns);
    if (d.drop_request || d.drop_response) {
      // A lost READ work request or completion: the client cannot tell what
      // happened and simply re-issues through the two-sided path.
      metrics_->onesided_validation_failures += 1;
      return std::nullopt;
    }
  }
  auto result = cluster_->OneSidedGet(table, key);
  if (!result.ok() && !result.status().IsNotFound()) {
    // Unroutable or dead node. The one-sided path has no fail-over story of
    // its own (there is no server to ask), so hand the op to the two-sided
    // retry machinery. NotFound is NOT a failure: with a valid epoch it is
    // the correct answer for an absent key.
    return std::nullopt;
  }
  uint64_t e1 = LeaseEpochOf(table, key);
  if (e1 != e0) {
    metrics_->onesided_validation_failures += 1;
    return std::nullopt;
  }
  *fill_epoch = e0;
  *response_bytes = result.ok() ? result->value.size() + 8 : 8;
  metrics_->onesided_reads += 1;
  return result;
}

Result<VersionedCell> StorageClient::GetImpl(TableId table,
                                             std::string_view key,
                                             bool try_one_sided) {
  metrics_->storage_ops += 1;
  clock_->Advance(options_.cpu.per_op_ns);
  VersionedCell cached;
  if (CacheProbe(table, key, &cached)) return cached;
  if (try_one_sided) {
    uint64_t fill_epoch = 0;
    uint64_t response_bytes = 0;
    auto fetched = OneSidedFetch(table, key, &fill_epoch, &response_bytes);
    if (fetched.has_value()) {
      ChargeOneSidedRead(key.size() + kPerOpHeaderBytes, response_bytes);
      if (fetched->ok()) CacheFill(table, key, **fetched, fill_epoch);
      return std::move(*fetched);
    }
    metrics_->onesided_fallbacks += 1;
  }
  // Two-sided path. The fill epoch is sampled before the fetch (a write
  // racing the gap only causes a spurious invalidation later, never a stale
  // hit — see store/record_cache.h).
  uint64_t fill_epoch = LeaseEpochOf(table, key);
  auto result = GetWithRetry(table, key);
  uint64_t response_bytes = result.ok() ? result->value.size() + 8 : 8;
  ChargeRequest(key.size() + kPerOpHeaderBytes, response_bytes);
  if (result.ok()) CacheFill(table, key, *result, fill_epoch);
  return result;
}

Result<VersionedCell> StorageClient::GetWithRetry(TableId table,
                                                  std::string_view key) {
  return IssueWithRetry(sim::FaultOpClass::kGet, table,
                        [&] { return cluster_->Get(table, key); });
}

Result<uint64_t> StorageClient::PutWithRetry(TableId table,
                                             std::string_view key,
                                             std::string_view value) {
  // Unconditional puts are idempotent in value (a re-applied put just mints
  // a fresh stamp), so a lost response is resolved by re-issuing.
  return IssueWithRetry(sim::FaultOpClass::kPut, table,
                        [&] { return cluster_->Put(table, key, value); });
}

// A conditional put with a lost response is ambiguous: blindly re-issuing
// after it DID apply would see its own stamp and report ConditionFailed,
// turning a committed write into a spurious abort. So before each
// re-issue, re-read the cell and decide:
//   * stamp still == expected  -> nothing applied, safe to re-issue;
//   * cell holds OUR value     -> the lost write applied; its (observed)
//                                 stamp is the success result;
//   * anything else            -> a concurrent writer won: genuine
//                                 ConditionFailed.
std::optional<Result<uint64_t>> StorageClient::ResolveAmbiguousConditionalPut(
    TableId table, std::string_view key, uint64_t expected_stamp,
    std::string_view value) {
  auto cell = GetWithRetry(table, key);
  ChargeRequest(key.size() + kPerOpHeaderBytes,
                cell.ok() ? cell->value.size() + 8 : 8);
  if (!cell.ok()) {
    if (cell.status().IsNotFound()) {
      if (expected_stamp == kStampAbsent) return std::nullopt;
      return std::optional<Result<uint64_t>>(Status::ConditionFailed(
          "cell erased during ambiguous conditional put"));
    }
    return std::nullopt;  // unresolved; the stamp check keeps a re-issue safe
  }
  if (cell->stamp == expected_stamp) return std::nullopt;  // not applied
  if (cell->value == value) {
    return std::optional<Result<uint64_t>>(uint64_t{cell->stamp});
  }
  return std::optional<Result<uint64_t>>(Status::ConditionFailed(
      "concurrent write superseded ambiguous conditional put"));
}

// The postcondition of an erase is "key absent", so an ambiguous attempt
// resolves by re-reading: absent -> done.
std::optional<Status> StorageClient::ResolveAmbiguousErase(
    TableId table, std::string_view key) {
  auto cell = GetWithRetry(table, key);
  ChargeRequest(key.size() + kPerOpHeaderBytes, 8);
  if (cell.status().IsNotFound()) return Status::OK();
  return std::nullopt;
}

// Same ambiguity as the conditional put: absent -> our erase applied;
// stamp unchanged -> not applied, re-issue; new stamp -> someone else
// wrote, genuine ConditionFailed.
std::optional<Status> StorageClient::ResolveAmbiguousConditionalErase(
    TableId table, std::string_view key, uint64_t expected_stamp) {
  auto cell = GetWithRetry(table, key);
  ChargeRequest(key.size() + kPerOpHeaderBytes,
                cell.ok() ? cell->value.size() + 8 : 8);
  if (cell.status().IsNotFound()) return Status::OK();
  if (!cell.ok()) return std::nullopt;
  if (cell->stamp == expected_stamp) return std::nullopt;  // not applied
  return Status::ConditionFailed(
      "cell overwritten during ambiguous conditional erase");
}

Result<uint64_t> StorageClient::ConditionalPutWithRetry(
    TableId table, std::string_view key, uint64_t expected_stamp,
    std::string_view value) {
  auto send = [&] {
    return cluster_->ConditionalPut(table, key, expected_stamp, value);
  };
  auto resolve = [&] {
    return ResolveAmbiguousConditionalPut(table, key, expected_stamp, value);
  };
  return IssueWithRetry(sim::FaultOpClass::kConditionalPut, table, send,
                        resolve);
}

Status StorageClient::EraseWithRetry(TableId table, std::string_view key) {
  auto send = [&] { return cluster_->Erase(table, key); };
  auto resolve = [&] { return ResolveAmbiguousErase(table, key); };
  return IssueWithRetry(sim::FaultOpClass::kErase, table, send, resolve);
}

Status StorageClient::ConditionalEraseWithRetry(TableId table,
                                                std::string_view key,
                                                uint64_t expected_stamp) {
  auto send = [&] {
    return cluster_->ConditionalErase(table, key, expected_stamp);
  };
  auto resolve = [&] {
    return ResolveAmbiguousConditionalErase(table, key, expected_stamp);
  };
  return IssueWithRetry(sim::FaultOpClass::kConditionalErase, table, send,
                        resolve);
}

sim::FaultOpClass StorageClient::OpClassOf(PendingOp::Kind kind) {
  switch (kind) {
    case PendingOp::Kind::kGet:
      return sim::FaultOpClass::kGet;
    case PendingOp::Kind::kPut:
      return sim::FaultOpClass::kPut;
    case PendingOp::Kind::kConditionalPut:
      return sim::FaultOpClass::kConditionalPut;
    case PendingOp::Kind::kErase:
      return sim::FaultOpClass::kErase;
    case PendingOp::Kind::kConditionalErase:
      return sim::FaultOpClass::kConditionalErase;
  }
  return sim::FaultOpClass::kAny;
}

Future<VersionedCell> StorageClient::AsyncGet(TableId table,
                                              std::string_view key) {
  if (!options_.pipelining) {
    Promise<VersionedCell> promise;
    promise.Set(Get(table, key));
    return promise.future();
  }
  metrics_->storage_ops += 1;
  clock_->Advance(options_.cpu.per_op_ns);
  // A cache hit needs no network at all, so it resolves at enqueue time
  // (the probe instant is the read's linearization point) instead of
  // occupying a slot in the flushed message.
  VersionedCell cached;
  if (CacheProbe(table, key, &cached)) {
    Promise<VersionedCell> promise;
    promise.Set(Result<VersionedCell>(std::move(cached)));
    return promise.future();
  }
  PendingOp op;
  op.kind = PendingOp::Kind::kGet;
  op.table = table;
  op.key = std::string(key);
  op.one_sided = OneSidedEnabled();
  op.get_state = std::make_shared<internal::FutureState<VersionedCell>>();
  op.get_state->flusher = this;
  Future<VersionedCell> future{op.get_state};
  pending_.push_back(std::move(op));
  return future;
}

Future<VersionedCell> StorageClient::AsyncOneSidedGet(TableId table,
                                                      std::string_view key) {
  // Forced one-sided read: attempt the RDMA READ protocol whenever the
  // network model is capable, even if ClientOptions::one_sided_reads is off
  // (callers that explicitly fetch raw cells, e.g. microbenchmarks and
  // tests). On a kernel-TCP model this is exactly AsyncGet.
  const bool capable = options_.network.HasOneSidedReads();
  if (!options_.pipelining) {
    Promise<VersionedCell> promise;
    promise.Set(GetImpl(table, key, capable));
    return promise.future();
  }
  metrics_->storage_ops += 1;
  clock_->Advance(options_.cpu.per_op_ns);
  VersionedCell cached;
  if (CacheProbe(table, key, &cached)) {
    Promise<VersionedCell> promise;
    promise.Set(Result<VersionedCell>(std::move(cached)));
    return promise.future();
  }
  PendingOp op;
  op.kind = PendingOp::Kind::kGet;
  op.table = table;
  op.key = std::string(key);
  op.one_sided = capable;
  op.get_state = std::make_shared<internal::FutureState<VersionedCell>>();
  op.get_state->flusher = this;
  Future<VersionedCell> future{op.get_state};
  pending_.push_back(std::move(op));
  return future;
}

Future<uint64_t> StorageClient::AsyncPut(TableId table, std::string_view key,
                                         std::string_view value) {
  if (!options_.pipelining) {
    Promise<uint64_t> promise;
    promise.Set(Put(table, key, value));
    return promise.future();
  }
  metrics_->storage_ops += 1;
  clock_->Advance(options_.cpu.per_op_ns);
  PendingOp op;
  op.kind = PendingOp::Kind::kPut;
  op.table = table;
  op.key = std::string(key);
  op.value = std::string(value);
  op.write_state = std::make_shared<internal::FutureState<uint64_t>>();
  op.write_state->flusher = this;
  Future<uint64_t> future{op.write_state};
  pending_.push_back(std::move(op));
  return future;
}

Future<uint64_t> StorageClient::AsyncConditionalPut(TableId table,
                                                    std::string_view key,
                                                    uint64_t expected_stamp,
                                                    std::string_view value) {
  if (!options_.pipelining) {
    Promise<uint64_t> promise;
    promise.Set(ConditionalPut(table, key, expected_stamp, value));
    return promise.future();
  }
  metrics_->storage_ops += 1;
  clock_->Advance(options_.cpu.per_op_ns);
  PendingOp op;
  op.kind = PendingOp::Kind::kConditionalPut;
  op.table = table;
  op.key = std::string(key);
  op.value = std::string(value);
  op.expected_stamp = expected_stamp;
  op.write_state = std::make_shared<internal::FutureState<uint64_t>>();
  op.write_state->flusher = this;
  Future<uint64_t> future{op.write_state};
  pending_.push_back(std::move(op));
  return future;
}

Future<uint64_t> StorageClient::AsyncErase(TableId table,
                                           std::string_view key) {
  if (!options_.pipelining) {
    Promise<uint64_t> promise;
    Status status = Erase(table, key);
    promise.Set(status.ok() ? Result<uint64_t>(uint64_t{0})
                            : Result<uint64_t>(status));
    return promise.future();
  }
  metrics_->storage_ops += 1;
  clock_->Advance(options_.cpu.per_op_ns);
  PendingOp op;
  op.kind = PendingOp::Kind::kErase;
  op.table = table;
  op.key = std::string(key);
  op.write_state = std::make_shared<internal::FutureState<uint64_t>>();
  op.write_state->flusher = this;
  Future<uint64_t> future{op.write_state};
  pending_.push_back(std::move(op));
  return future;
}

Future<uint64_t> StorageClient::AsyncConditionalErase(TableId table,
                                                      std::string_view key,
                                                      uint64_t expected_stamp) {
  if (!options_.pipelining) {
    Promise<uint64_t> promise;
    Status status = ConditionalErase(table, key, expected_stamp);
    promise.Set(status.ok() ? Result<uint64_t>(uint64_t{0})
                            : Result<uint64_t>(status));
    return promise.future();
  }
  metrics_->storage_ops += 1;
  clock_->Advance(options_.cpu.per_op_ns);
  PendingOp op;
  op.kind = PendingOp::Kind::kConditionalErase;
  op.table = table;
  op.key = std::string(key);
  op.expected_stamp = expected_stamp;
  op.write_state = std::make_shared<internal::FutureState<uint64_t>>();
  op.write_state->flusher = this;
  Future<uint64_t> future{op.write_state};
  pending_.push_back(std::move(op));
  return future;
}

uint64_t StorageClient::ExecuteRaw(PendingOp* op) {
  switch (op->kind) {
    case PendingOp::Kind::kGet: {
      op->get_result = cluster_->Get(op->table, op->key);
      return op->get_result->ok() ? (**op->get_result).value.size() + 8 : 8;
    }
    case PendingOp::Kind::kPut:
      op->write_result = cluster_->Put(op->table, op->key, op->value);
      return 16;
    case PendingOp::Kind::kConditionalPut:
      op->write_result = cluster_->ConditionalPut(op->table, op->key,
                                                  op->expected_stamp,
                                                  op->value);
      return 16;
    case PendingOp::Kind::kErase: {
      Status status = cluster_->Erase(op->table, op->key);
      op->write_result = status.ok() ? Result<uint64_t>(uint64_t{0})
                                     : Result<uint64_t>(status);
      return 16;
    }
    case PendingOp::Kind::kConditionalErase: {
      Status status =
          cluster_->ConditionalErase(op->table, op->key, op->expected_stamp);
      op->write_result = status.ok() ? Result<uint64_t>(uint64_t{0})
                                     : Result<uint64_t>(status);
      return 16;
    }
  }
  return 0;
}

void StorageClient::ResolvePending(PendingOp* op,
                                   uint64_t* replicated_writes) {
  switch (op->kind) {
    case PendingOp::Kind::kGet: {
      auto send = [&] { return cluster_->Get(op->table, op->key); };
      auto result = RetryLoop(
          sim::FaultOpClass::kGet, op->table, std::move(*op->get_result), send,
          []() -> std::optional<Result<VersionedCell>> { return std::nullopt; });
      op->get_state->Resolve(std::move(result));
      return;
    }
    case PendingOp::Kind::kPut: {
      auto send = [&] { return cluster_->Put(op->table, op->key, op->value); };
      auto result = RetryLoop(
          sim::FaultOpClass::kPut, op->table, std::move(*op->write_result),
          send, []() -> std::optional<Result<uint64_t>> { return std::nullopt; });
      if (result.ok()) ++*replicated_writes;
      op->write_state->Resolve(std::move(result));
      return;
    }
    case PendingOp::Kind::kConditionalPut: {
      auto send = [&] {
        return cluster_->ConditionalPut(op->table, op->key, op->expected_stamp,
                                        op->value);
      };
      auto resolve = [&] {
        return ResolveAmbiguousConditionalPut(op->table, op->key,
                                              op->expected_stamp, op->value);
      };
      auto result = RetryLoop(sim::FaultOpClass::kConditionalPut, op->table,
                              std::move(*op->write_result), send, resolve);
      if (result.status().IsConditionFailed()) metrics_->llsc_failures += 1;
      if (result.ok()) ++*replicated_writes;
      op->write_state->Resolve(std::move(result));
      return;
    }
    case PendingOp::Kind::kErase: {
      auto send = [&] { return cluster_->Erase(op->table, op->key); };
      auto resolve = [&] { return ResolveAmbiguousErase(op->table, op->key); };
      Status initial = op->write_result->ok() ? Status::OK()
                                              : op->write_result->status();
      Status status = RetryLoop(sim::FaultOpClass::kErase, op->table,
                                std::move(initial), send, resolve);
      op->write_state->Resolve(status.ok() ? Result<uint64_t>(uint64_t{0})
                                           : Result<uint64_t>(status));
      return;
    }
    case PendingOp::Kind::kConditionalErase: {
      auto send = [&] {
        return cluster_->ConditionalErase(op->table, op->key,
                                          op->expected_stamp);
      };
      auto resolve = [&] {
        return ResolveAmbiguousConditionalErase(op->table, op->key,
                                                op->expected_stamp);
      };
      Status initial = op->write_result->ok() ? Status::OK()
                                              : op->write_result->status();
      Status status = RetryLoop(sim::FaultOpClass::kConditionalErase,
                                op->table, std::move(initial), send, resolve);
      if (status.IsConditionFailed()) metrics_->llsc_failures += 1;
      op->write_state->Resolve(status.ok() ? Result<uint64_t>(uint64_t{0})
                                           : Result<uint64_t>(status));
      return;
    }
  }
}

void StorageClient::Flush() {
  if (pending_.empty()) return;
  std::vector<PendingOp> ops = std::move(pending_);
  pending_.clear();
  metrics_->pipeline_flushes += 1;
  metrics_->pipeline_in_flight.Record(ops.size());

  uint64_t slowest_message_ns = 0;
  uint64_t total_serial_ns = 0;

  // One-sided pre-pass: eligible reads are issued as individual RDMA READs
  // flying in parallel with the coalesced messages below (each READ is its
  // own "message" for the slowest-message clock advance). A read that
  // validates resolves here; one that does not joins its node's two-sided
  // message like any other get.
  std::vector<bool> one_sided_done(ops.size(), false);
  for (size_t i = 0; i < ops.size(); ++i) {
    PendingOp& op = ops[i];
    if (op.kind != PendingOp::Kind::kGet || !op.one_sided) continue;
    uint64_t fill_epoch = 0;
    uint64_t response_bytes = 0;
    auto fetched = OneSidedFetch(op.table, op.key, &fill_epoch,
                                 &response_bytes);
    if (!fetched.has_value()) {
      metrics_->onesided_fallbacks += 1;
      continue;
    }
    op.get_result = std::move(*fetched);
    one_sided_done[i] = true;
    uint64_t request_bytes = op.key.size() + kPerOpHeaderBytes;
    uint64_t cost =
        options_.network.OneSidedReadCost(request_bytes, response_bytes);
    metrics_->storage_requests += 1;
    metrics_->bytes_sent += request_bytes;
    metrics_->bytes_received += response_bytes;
    if (op.get_result->ok()) {
      CacheFill(op.table, op.key, **op.get_result, fill_epoch);
    }
    slowest_message_ns = std::max(slowest_message_ns, cost);
    total_serial_ns += cost;
  }

  // One coalesced message per master storage node, issued in parallel
  // (std::map keeps the group order deterministic).
  std::map<uint32_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (one_sided_done[i]) continue;
    auto master = cluster_->MasterOf(ops[i].table, ops[i].key);
    groups[master.ok() ? *master : 0].push_back(i);
  }
  for (const auto& [node, members] : groups) {
    (void)node;
    // Fault injection observes the same unit the accounting charges: one
    // consultation per coalesced message, a firing drop affecting every op
    // inside it.
    sim::FaultInjector::Decision d;
    if (options_.fault_injector != nullptr) {
      std::vector<std::pair<sim::FaultOpClass, uint32_t>> classes;
      classes.reserve(members.size());
      for (size_t i : members) {
        classes.emplace_back(OpClassOf(ops[i].kind), ops[i].table);
      }
      d = options_.fault_injector->OnMessage(classes);
    }
    if (d.kill_node >= 0 &&
        d.kill_node < static_cast<int64_t>(cluster_->num_nodes())) {
      cluster_->node(static_cast<uint32_t>(d.kill_node))->Kill();
    }
    std::vector<std::pair<uint64_t, uint64_t>> per_op_bytes;
    per_op_bytes.reserve(members.size());
    uint64_t sent = kPerRequestHeaderBytes;
    uint64_t received = 0;
    for (size_t i : members) {
      PendingOp& op = ops[i];
      uint64_t request_bytes =
          op.key.size() + op.value.size() + kPerOpHeaderBytes;
      uint64_t response_bytes = 0;
      if (d.drop_request) {
        // The message never reached the node: nothing executed, no response
        // bytes received or charged.
        Status lost = Status::Unavailable("injected fault: request dropped");
        if (op.kind == PendingOp::Kind::kGet) {
          op.get_result = Result<VersionedCell>(lost);
        } else {
          op.write_result = Result<uint64_t>(lost);
        }
      } else {
        if (op.kind == PendingOp::Kind::kGet) {
          // Cache-fill tag: the epoch must be sampled before the fetch
          // executes (store/record_cache.h).
          op.fill_epoch = LeaseEpochOf(op.table, op.key);
        }
        response_bytes = ExecuteRaw(&op);
        if (d.drop_response) {
          // Executed, but the response message was lost: every op in it is
          // ambiguous and no bytes came back.
          Status lost = Status::Unavailable(
              "injected fault: response dropped (ambiguous outcome)");
          if (op.kind == PendingOp::Kind::kGet) {
            op.get_result = Result<VersionedCell>(lost);
          } else {
            op.write_result = Result<uint64_t>(lost);
          }
          response_bytes = 0;
        } else if (op.kind == PendingOp::Kind::kGet && op.get_result->ok()) {
          CacheFill(op.table, op.key, **op.get_result, op.fill_epoch);
        }
      }
      per_op_bytes.emplace_back(request_bytes, response_bytes);
      sent += request_bytes;
      received += response_bytes;
    }
    auto cost = options_.network.CoalescedRequestCost(per_op_bytes,
                                                      kPerRequestHeaderBytes);
    metrics_->storage_requests += 1;
    metrics_->bytes_sent += sent;
    metrics_->bytes_received += received;
    metrics_->batch_size.Record(members.size());
    metrics_->pipeline_batch_size.Record(members.size());
    slowest_message_ns =
        std::max(slowest_message_ns, cost.message_ns + d.extra_latency_ns);
    total_serial_ns += cost.serial_ns + d.extra_latency_ns;
  }
  clock_->Advance(slowest_message_ns);
  if (total_serial_ns > slowest_message_ns) {
    metrics_->pipeline_overlap_saved_ns += total_serial_ns - slowest_message_ns;
  }

  // Per-logical-request failure handling: every op whose first (coalesced)
  // attempt came back Unavailable now runs the ordinary RetryPolicy —
  // fail-over, jittered backoff, ambiguous-write resolution — before its
  // future resolves.
  uint64_t replicated_writes = 0;
  for (PendingOp& op : ops) ResolvePending(&op, &replicated_writes);
  ChargeReplication(replicated_writes);
}

Result<VersionedCell> StorageClient::Get(TableId table, std::string_view key) {
  return GetImpl(table, key, OneSidedEnabled());
}

std::vector<Result<VersionedCell>> StorageClient::BatchGet(
    const std::vector<GetOp>& ops) {
  if (options_.pipelining) {
    // Async enqueue + one flush; the Async/Flush path owns all accounting.
    std::vector<Future<VersionedCell>> futures;
    futures.reserve(ops.size());
    for (const auto& op : ops) futures.push_back(AsyncGet(op.table, op.key));
    Flush();
    std::vector<Result<VersionedCell>> results;
    results.reserve(futures.size());
    for (auto& future : futures) results.push_back(future.Await());
    return results;
  }

  std::vector<Result<VersionedCell>> results;
  results.reserve(ops.size());
  metrics_->storage_ops += ops.size();
  clock_->Advance(options_.cpu.per_op_ns * ops.size());

  if (!options_.batching) {
    // Ablation mode: one sequential round trip per logical op. Cache hits
    // and one-sided reads still apply — that ablation isolates *batching*.
    for (const auto& op : ops) {
      VersionedCell cached;
      if (CacheProbe(op.table, op.key, &cached)) {
        results.push_back(std::move(cached));
        continue;
      }
      if (OneSidedEnabled()) {
        uint64_t fill_epoch = 0;
        uint64_t response_bytes = 0;
        auto fetched = OneSidedFetch(op.table, op.key, &fill_epoch,
                                     &response_bytes);
        if (fetched.has_value()) {
          ChargeOneSidedRead(op.key.size() + kPerOpHeaderBytes,
                             response_bytes);
          if (fetched->ok()) CacheFill(op.table, op.key, **fetched, fill_epoch);
          results.push_back(std::move(*fetched));
          continue;
        }
        metrics_->onesided_fallbacks += 1;
      }
      uint64_t fill_epoch = LeaseEpochOf(op.table, op.key);
      auto result = GetWithRetry(op.table, op.key);
      uint64_t response_bytes = result.ok() ? result->value.size() + 8 : 8;
      ChargeRequest(op.key.size() + kPerOpHeaderBytes, response_bytes);
      if (result.ok()) CacheFill(op.table, op.key, *result, fill_epoch);
      results.push_back(std::move(result));
    }
    return results;
  }

  // Group ops by master storage node; one request per node, in parallel.
  // Cache hits cost nothing; one-sided reads fly as individual READs next
  // to the coalesced two-sided requests, so the charged time is the max
  // over all of them.
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> group_bytes;
  std::map<uint32_t, uint64_t> group_ops;
  uint64_t max_parallel_ns = 0;
  for (const auto& op : ops) {
    VersionedCell cached;
    if (CacheProbe(op.table, op.key, &cached)) {
      results.push_back(std::move(cached));
      continue;
    }
    if (OneSidedEnabled()) {
      uint64_t fill_epoch = 0;
      uint64_t response_bytes = 0;
      auto fetched = OneSidedFetch(op.table, op.key, &fill_epoch,
                                   &response_bytes);
      if (fetched.has_value()) {
        uint64_t request_bytes = op.key.size() + kPerOpHeaderBytes;
        metrics_->storage_requests += 1;
        metrics_->bytes_sent += request_bytes;
        metrics_->bytes_received += response_bytes;
        max_parallel_ns = std::max(
            max_parallel_ns,
            options_.network.OneSidedReadCost(request_bytes, response_bytes));
        if (fetched->ok()) CacheFill(op.table, op.key, **fetched, fill_epoch);
        results.push_back(std::move(*fetched));
        continue;
      }
      metrics_->onesided_fallbacks += 1;
    }
    uint64_t fill_epoch = LeaseEpochOf(op.table, op.key);
    auto result = GetWithRetry(op.table, op.key);
    auto master = cluster_->MasterOf(op.table, op.key);
    uint32_t node = master.ok() ? *master : 0;
    auto& [req, resp] = group_bytes[node];
    req += op.key.size() + kPerOpHeaderBytes;
    resp += result.ok() ? result->value.size() + 8 : 8;
    group_ops[node] += 1;
    if (result.ok()) CacheFill(op.table, op.key, *result, fill_epoch);
    results.push_back(std::move(result));
  }
  for (const auto& [node, bytes] : group_bytes) {
    max_parallel_ns =
        std::max(max_parallel_ns,
                 options_.network.RequestCost(
                     bytes.first + kPerRequestHeaderBytes, bytes.second));
    metrics_->storage_requests += 1;
    metrics_->bytes_sent += bytes.first + kPerRequestHeaderBytes;
    metrics_->bytes_received += bytes.second;
  }
  for (const auto& [node, count] : group_ops) {
    metrics_->batch_size.Record(count);
  }
  clock_->Advance(max_parallel_ns);
  return results;
}

Result<uint64_t> StorageClient::Put(TableId table, std::string_view key,
                                    std::string_view value) {
  metrics_->storage_ops += 1;
  clock_->Advance(options_.cpu.per_op_ns);
  auto result = PutWithRetry(table, key, value);
  ChargeRequest(key.size() + value.size() + kPerOpHeaderBytes, 16);
  ChargeReplication(1);
  return result;
}

Result<uint64_t> StorageClient::ConditionalPut(TableId table,
                                               std::string_view key,
                                               uint64_t expected_stamp,
                                               std::string_view value) {
  metrics_->storage_ops += 1;
  clock_->Advance(options_.cpu.per_op_ns);
  auto result = ConditionalPutWithRetry(table, key, expected_stamp, value);
  if (result.status().IsConditionFailed()) metrics_->llsc_failures += 1;
  ChargeRequest(key.size() + value.size() + kPerOpHeaderBytes, 16);
  if (result.ok()) ChargeReplication(1);
  return result;
}

Status StorageClient::Erase(TableId table, std::string_view key) {
  metrics_->storage_ops += 1;
  clock_->Advance(options_.cpu.per_op_ns);
  Status status = EraseWithRetry(table, key);
  ChargeRequest(key.size() + kPerOpHeaderBytes, 16);
  if (status.ok()) ChargeReplication(1);
  return status;
}

Status StorageClient::ConditionalErase(TableId table, std::string_view key,
                                       uint64_t expected_stamp) {
  metrics_->storage_ops += 1;
  clock_->Advance(options_.cpu.per_op_ns);
  Status status = ConditionalEraseWithRetry(table, key, expected_stamp);
  if (status.IsConditionFailed()) metrics_->llsc_failures += 1;
  ChargeRequest(key.size() + kPerOpHeaderBytes, 16);
  if (status.ok()) ChargeReplication(1);
  return status;
}

std::vector<Result<uint64_t>> StorageClient::BatchWrite(
    const std::vector<WriteOp>& ops) {
  if (options_.pipelining) {
    // Async enqueue + one flush; llsc_failures and replication are counted
    // by the resolution step inside Flush().
    std::vector<Future<uint64_t>> futures;
    futures.reserve(ops.size());
    for (const auto& op : ops) {
      if (op.erase) {
        futures.push_back(op.conditional
                              ? AsyncConditionalErase(op.table, op.key,
                                                      op.expected_stamp)
                              : AsyncErase(op.table, op.key));
      } else if (op.conditional) {
        futures.push_back(
            AsyncConditionalPut(op.table, op.key, op.expected_stamp, op.value));
      } else {
        futures.push_back(AsyncPut(op.table, op.key, op.value));
      }
    }
    Flush();
    std::vector<Result<uint64_t>> results;
    results.reserve(futures.size());
    for (auto& future : futures) results.push_back(future.Await());
    return results;
  }

  std::vector<Result<uint64_t>> results;
  results.reserve(ops.size());
  metrics_->storage_ops += ops.size();
  clock_->Advance(options_.cpu.per_op_ns * ops.size());

  auto apply = [&](const WriteOp& op) -> Result<uint64_t> {
    if (op.erase) {
      Status st = op.conditional ? ConditionalEraseWithRetry(op.table, op.key,
                                                             op.expected_stamp)
                                 : EraseWithRetry(op.table, op.key);
      if (!st.ok()) return st;
      return uint64_t{0};
    }
    if (op.conditional) {
      return ConditionalPutWithRetry(op.table, op.key, op.expected_stamp,
                                     op.value);
    }
    return PutWithRetry(op.table, op.key, op.value);
  };

  if (!options_.batching) {
    for (const auto& op : ops) {
      results.push_back(apply(op));
      if (results.back().status().IsConditionFailed()) {
        metrics_->llsc_failures += 1;
      }
      ChargeRequest(op.key.size() + op.value.size() + kPerOpHeaderBytes, 16);
      if (results.back().ok() && !op.erase) ChargeReplication(1);
    }
    return results;
  }

  std::map<uint32_t, std::pair<uint64_t, uint64_t>> group_bytes;
  std::map<uint32_t, uint64_t> group_ops;
  uint64_t replicated_writes = 0;
  for (const auto& op : ops) {
    Result<uint64_t> result = apply(op);
    if (result.status().IsConditionFailed()) metrics_->llsc_failures += 1;
    auto master = cluster_->MasterOf(op.table, op.key);
    uint32_t node = master.ok() ? *master : 0;
    auto& [req, resp] = group_bytes[node];
    req += op.key.size() + op.value.size() + kPerOpHeaderBytes;
    resp += 16;
    group_ops[node] += 1;
    if (result.ok() && !op.erase) ++replicated_writes;
    results.push_back(std::move(result));
  }
  std::vector<std::pair<uint64_t, uint64_t>> requests;
  requests.reserve(group_bytes.size());
  for (const auto& [node, bytes] : group_bytes) requests.push_back(bytes);
  for (const auto& [node, count] : group_ops) {
    metrics_->batch_size.Record(count);
  }
  ChargeParallelRequests(requests);
  ChargeReplication(replicated_writes);
  return results;
}

Result<std::vector<KeyCell>> StorageClient::Scan(TableId table,
                                                 std::string_view start_key,
                                                 std::string_view end_key,
                                                 size_t limit, bool reverse) {
  metrics_->storage_ops += 1;
  clock_->Advance(options_.cpu.per_op_ns);
  auto result = IssueWithRetry(sim::FaultOpClass::kScan, table, [&] {
    return cluster_->Scan(table, start_key, end_key, limit, reverse);
  });
  uint64_t response_bytes = 16;
  if (result.ok()) {
    for (const auto& cell : *result) {
      response_bytes += cell.key.size() + cell.value.size() + 16;
    }
  }
  // One request per partition, issued in parallel; the largest partition's
  // share of the payload dominates. Approximate the parallel cost with the
  // payload divided evenly across partitions.
  auto num_partitions = cluster_->partition_map().NumPartitions(table);
  uint64_t parts = num_partitions.ok() ? *num_partitions : 1;
  std::vector<std::pair<uint64_t, uint64_t>> requests(
      parts, {start_key.size() + end_key.size() + kPerOpHeaderBytes,
              response_bytes / std::max<uint64_t>(parts, 1)});
  ChargeParallelRequests(requests);
  return result;
}

/// Modelled storage-node CPU per examined cell of a pushdown/fragment scan.
/// Charged on the response latency; a dedicated scan thread would hide most
/// of it (§5.2).
constexpr uint64_t kServerScanPerRecordNs = 50;

Result<std::vector<KeyCell>> StorageClient::PushdownScan(
    TableId table, std::string_view start_key, std::string_view end_key,
    size_t limit,
    const std::function<bool(std::string_view, std::string_view, std::string*)>&
        transform,
    uint64_t filter_descriptor_bytes, uint64_t* scanned_out) {
  metrics_->storage_ops += 1;
  clock_->Advance(options_.cpu.per_op_ns);
  uint64_t scanned = 0;
  auto result = IssueWithRetry(sim::FaultOpClass::kScan, table, [&] {
    scanned = 0;  // a retried attempt re-examines the range from scratch
    return cluster_->ScanFiltered(table, start_key, end_key, limit, transform,
                                  &scanned);
  });
  // Only the MATCHING rows' visible payloads travel over the network (the
  // transform strips version history and tombstones server-side); the
  // examined cells cost storage-node CPU.
  uint64_t response_bytes = 16;
  if (result.ok()) {
    for (const auto& cell : *result) {
      response_bytes += cell.key.size() + cell.value.size() + 16;
    }
  }
  auto num_partitions = cluster_->partition_map().NumPartitions(table);
  uint64_t parts = num_partitions.ok() ? *num_partitions : 1;
  std::vector<std::pair<uint64_t, uint64_t>> requests(
      parts,
      {start_key.size() + end_key.size() + filter_descriptor_bytes +
           kPerOpHeaderBytes,
       response_bytes / std::max<uint64_t>(parts, 1)});
  ChargeParallelRequests(requests);
  clock_->Advance(scanned * kServerScanPerRecordNs /
                  std::max<uint64_t>(parts, 1));
  if (scanned_out != nullptr) *scanned_out += scanned;
  return result;
}

Result<FragmentScanOutcome> StorageClient::ExecuteFragmentScan(
    TableId table, uint64_t descriptor_bytes,
    const FragmentSinkFactory& make_sink) {
  metrics_->storage_ops += 1;
  clock_->Advance(options_.cpu.per_op_ns);
  auto num_partitions = cluster_->partition_map().NumPartitions(table);
  if (!num_partitions.ok()) return num_partitions.status();
  const uint32_t parts = *num_partitions;

  auto result = IssueWithRetry(
      sim::FaultOpClass::kScan, table, [&]() -> Result<FragmentScanOutcome> {
        // A retried attempt rebuilds every sink: a replayed fragment must
        // never fold rows into a half-filled partial state.
        FragmentScanOutcome out;
        out.partitions = parts;
        for (uint32_t p = 0; p < parts; ++p) {
          std::unique_ptr<FragmentSink> sink = make_sink(p);
          FragmentScanStats stats;
          TELL_RETURN_NOT_OK(cluster_->FragmentScan(
              table, p, options_.scan_chunk_cells, sink.get(), &stats));
          out.rows_scanned += stats.cells_scanned;
          out.chunk_lock_releases += stats.chunk_lock_releases;
          out.sinks.push_back(std::move(sink));
        }
        return out;
      });
  if (!result.ok()) return result;

  // Each partition answers with its serialized partial state — O(groups)
  // bytes, not O(rows) — and the fan-out flies in parallel, so the charged
  // time is the slowest partition's request, not the sum.
  std::vector<std::pair<uint64_t, uint64_t>> requests;
  requests.reserve(result->sinks.size());
  for (const auto& sink : result->sinks) {
    std::string partial = sink->Finish();
    result->rows_returned += sink->rows_returned();
    result->baseline_bytes += sink->baseline_bytes();
    result->response_bytes += 16 + partial.size();
    requests.push_back(
        {descriptor_bytes + kPerOpHeaderBytes, 16 + partial.size()});
  }
  ChargeParallelRequests(requests);
  clock_->Advance(result->rows_scanned * kServerScanPerRecordNs /
                  std::max<uint64_t>(parts, 1));
  return result;
}

Result<int64_t> StorageClient::AtomicIncrement(TableId table,
                                               std::string_view key,
                                               int64_t delta) {
  metrics_->storage_ops += 1;
  clock_->Advance(options_.cpu.per_op_ns);
  auto result =
      IssueWithRetry(sim::FaultOpClass::kAtomicIncrement, table,
                     [&] { return cluster_->AtomicIncrement(table, key, delta); });
  ChargeRequest(key.size() + 8 + kPerOpHeaderBytes, 16);
  return result;
}

}  // namespace tell::store
