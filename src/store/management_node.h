#ifndef TELL_STORE_MANAGEMENT_NODE_H_
#define TELL_STORE_MANAGEMENT_NODE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "store/cluster.h"

namespace tell::store {

/// The management node of the storage layer (paper §4.4.2): detects storage
/// node failures, fails partitions over to their replicas and restores the
/// replication level on the surviving nodes.
///
/// Failure detection in the paper is an eventually perfect detector based on
/// timeouts; in the in-process reproduction a node's crash-stop state is its
/// `alive()` flag, and DetectAndRecover() plays the role of the detector
/// firing. Only one recovery process runs at a time (§4.4.1), enforced with
/// a mutex; a single pass handles any number of concurrently failed nodes.
class ManagementNode {
 public:
  explicit ManagementNode(Cluster* cluster) : cluster_(cluster) {}

  ManagementNode(const ManagementNode&) = delete;
  ManagementNode& operator=(const ManagementNode&) = delete;

  /// Scans for dead storage nodes and recovers each: every partition whose
  /// master died is failed over to a surviving replica (which already holds
  /// all acknowledged writes, thanks to synchronous replication), and
  /// partitions below the configured replication factor are re-replicated
  /// onto other live nodes. Returns the number of nodes recovered.
  Result<uint32_t> DetectAndRecover();

  /// True if every live partition currently has `replication_factor` copies
  /// on live nodes (test hook).
  bool ReplicationLevelRestored() const;

 private:
  Status RecoverNode(uint32_t node_id);
  Status RestoreReplicationLevel();

  Cluster* const cluster_;
  std::mutex recovery_mutex_;
  std::vector<bool> handled_;  // grown lazily; true once a node was recovered
};

}  // namespace tell::store

#endif  // TELL_STORE_MANAGEMENT_NODE_H_
