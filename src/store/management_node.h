#ifndef TELL_STORE_MANAGEMENT_NODE_H_
#define TELL_STORE_MANAGEMENT_NODE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "store/cluster.h"

namespace tell::store {

/// Running totals of live partition migrations (exported as the
/// `store.migration.*` gauges by db::TellDb::ExportStats).
struct MigrationStats {
  uint64_t started = 0;
  uint64_t completed = 0;
  /// Cells moved by the initial bulk copies.
  uint64_t cells_copied = 0;
  /// Catch-up delta rounds run (including the sealed final round).
  uint64_t delta_rounds = 0;
  /// Put cells shipped by catch-up deltas.
  uint64_t delta_cells = 0;
  /// Journaled erases the destination actually applied.
  uint64_t erases_applied = 0;
};

/// The management node of the storage layer (paper §4.4.2): detects storage
/// node failures, fails partitions over to their replicas and restores the
/// replication level on the surviving nodes.
///
/// Failure detection in the paper is an eventually perfect detector based on
/// timeouts; in the in-process reproduction a node's crash-stop state is its
/// `alive()` flag, and DetectAndRecover() plays the role of the detector
/// firing. Only one recovery process runs at a time (§4.4.1), enforced with
/// a mutex; a single pass handles any number of concurrently failed nodes.
class ManagementNode {
 public:
  explicit ManagementNode(Cluster* cluster) : cluster_(cluster) {}

  ManagementNode(const ManagementNode&) = delete;
  ManagementNode& operator=(const ManagementNode&) = delete;

  /// Scans for dead storage nodes and recovers each: every partition whose
  /// master died is failed over to a surviving replica (which already holds
  /// all acknowledged writes, thanks to synchronous replication), and
  /// partitions below the configured replication factor are re-replicated
  /// onto other live nodes. Returns the number of nodes recovered.
  Result<uint32_t> DetectAndRecover();

  /// True if every live partition currently has `replication_factor` copies
  /// on live nodes (test hook).
  bool ReplicationLevelRestored() const;

  /// Moves one partition's master copy to `dest_node` while writes continue
  /// (live migration; state machine in docs/RECOVERY.md). Bulk copy, then
  /// stamp-watermarked catch-up delta rounds, then a brief write freeze for
  /// the sealed final delta and the atomic master re-point. Readers and
  /// writers follow the partition map to the destination; the source copy
  /// stays sealed. Runs under the recovery mutex — one topology change at a
  /// time.
  Status MigratePartition(TableId table, uint32_t partition,
                          uint32_t dest_node);

  MigrationStats migration_stats() const;

 private:
  Status RecoverNode(uint32_t node_id);
  Status RestoreReplicationLevel();

  Cluster* const cluster_;
  std::mutex recovery_mutex_;
  std::vector<bool> handled_;  // grown lazily; true once a node was recovered

  mutable std::mutex migration_mutex_;  // guards migration_stats_
  MigrationStats migration_stats_;
};

}  // namespace tell::store

#endif  // TELL_STORE_MANAGEMENT_NODE_H_
