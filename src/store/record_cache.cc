#include "store/record_cache.h"

#include <algorithm>
#include <functional>

namespace tell::store {

namespace {

uint32_t RoundUpPow2(uint32_t v) {
  if (v < 1) return 1;
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

RecordCache::RecordCache(const RecordCacheOptions& options)
    : per_shard_capacity_(
          std::max<size_t>(1, options.max_entries /
                                  std::max<uint32_t>(1, RoundUpPow2(
                                                            options.stripes)))),
      shard_mask_(RoundUpPow2(options.stripes) - 1),
      shards_(shard_mask_ + 1) {}

std::string RecordCache::CacheKey(TableId table, std::string_view key) {
  std::string out;
  out.reserve(sizeof(table) + key.size());
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((table >> shift) & 0xFF));
  }
  out.append(key);
  return out;
}

RecordCache::Shard& RecordCache::ShardOf(const std::string& cache_key) {
  return shards_[std::hash<std::string>{}(cache_key) & shard_mask_];
}

void RecordCache::EraseLocked(
    Shard& shard, std::unordered_map<std::string, Entry>::iterator it) {
  shard.lru.erase(it->second.lru_it);
  shard.map.erase(it);
  entry_count_.fetch_sub(1, std::memory_order_relaxed);
}

bool RecordCache::Get(TableId table, std::string_view key,
                      uint64_t current_epoch, VersionedCell* out) {
  const std::string ck = CacheKey(table, key);
  Shard& shard = ShardOf(ck);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(ck);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (it->second.fill_epoch != current_epoch) {
    // The partition changed since the fill — the lease is broken. Drop the
    // entry so the next fill re-fetches under the new epoch.
    EraseLocked(shard, it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  out->value = it->second.value;
  out->stamp = it->second.stamp;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void RecordCache::Put(TableId table, std::string_view key,
                      const VersionedCell& cell, uint64_t fill_epoch) {
  const std::string ck = CacheKey(table, key);
  Shard& shard = ShardOf(ck);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(ck);
  if (it != shard.map.end()) {
    it->second.value = cell.value;
    it->second.stamp = cell.stamp;
    it->second.fill_epoch = fill_epoch;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return;
  }
  shard.lru.push_front(ck);
  Entry entry;
  entry.value = cell.value;
  entry.stamp = cell.stamp;
  entry.fill_epoch = fill_epoch;
  entry.lru_it = shard.lru.begin();
  shard.map.emplace(ck, std::move(entry));
  entry_count_.fetch_add(1, std::memory_order_relaxed);
  while (shard.map.size() > per_shard_capacity_) {
    auto victim = shard.map.find(shard.lru.back());
    EraseLocked(shard, victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

RecordCacheStats RecordCache::stats() const {
  RecordCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.entries = entry_count_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tell::store
