#ifndef TELL_STORE_CLUSTER_H_
#define TELL_STORE_CLUSTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "store/partition_map.h"
#include "store/record_cache.h"
#include "store/storage_node.h"

namespace tell::store {

/// Configuration of the distributed storage system.
struct ClusterOptions {
  uint32_t num_storage_nodes = 3;
  uint32_t replication_factor = 1;
  /// Partitions per table = num_storage_nodes * partitions_per_node, so load
  /// spreads evenly and fail-over moves 1/Nth of the data.
  uint32_t partitions_per_node = 4;
  /// DRAM budget per storage node.
  uint64_t memory_per_node_bytes = 4ULL << 30;
  /// Lock stripes per table partition on each storage node (rounded up to a
  /// power of two). 1 reproduces the old monolithic per-partition lock.
  uint32_t stripes_per_partition = kDefaultStripesPerPartition;
};

/// The distributed storage system: a set of storage nodes, the partition
/// map (lookup service) and the routing/replication logic that in a real
/// deployment would live in the RamCloud coordinator and servers.
///
/// This class is the *server side*; processing nodes talk to it through
/// StorageClient, which layers network-cost accounting and batching on top.
/// Every write is synchronously replicated to all backups of the partition
/// before it is acknowledged (paper §4.4.2: in-memory storage mandates
/// synchronous replication), and reads are always served by the master copy
/// (§6.1: "all requests to a particular partition are sent to the master
/// copy").
class Cluster {
 public:
  explicit Cluster(const ClusterOptions& options);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterOptions& options() const { return options_; }

  /// Creates a table spread across all live storage nodes. Returns its id.
  Result<TableId> CreateTable(const std::string& name);

  /// Id of an existing table.
  Result<TableId> TableByName(const std::string& name) const;

  // --- Record operations (routed to the master copy, replicated) ---------

  Result<VersionedCell> Get(TableId table, std::string_view key) const;
  /// One-sided read of the master copy: routes like Get but reads through
  /// StorageNode::OneSidedRead, which skips the node's request counters (an
  /// RDMA READ never touches the server CPU). Clients must validate the
  /// result against the partition's lease epoch before trusting it.
  Result<VersionedCell> OneSidedGet(TableId table, std::string_view key) const;
  Result<uint64_t> Put(TableId table, std::string_view key,
                       std::string_view value);
  Result<uint64_t> ConditionalPut(TableId table, std::string_view key,
                                  uint64_t expected_stamp,
                                  std::string_view value);
  Status ConditionalErase(TableId table, std::string_view key,
                          uint64_t expected_stamp);
  Status Erase(TableId table, std::string_view key);
  Result<int64_t> AtomicIncrement(TableId table, std::string_view key,
                                  int64_t delta);

  /// Ordered scan of [start_key, end_key) merged across all partitions of
  /// the table. `limit` 0 = unlimited; `reverse` walks keys descending.
  Result<std::vector<KeyCell>> Scan(TableId table, std::string_view start_key,
                                    std::string_view end_key, size_t limit,
                                    bool reverse = false) const;

  /// Filtered scan with the transform evaluated on the storage nodes
  /// (§5.2 operator push-down); only matching rows' shipped bytes (the
  /// visible payload the transform wrote, not the stored multi-version
  /// cell) are returned. `scanned` (optional) counts cells examined
  /// server-side.
  Result<std::vector<KeyCell>> ScanFiltered(
      TableId table, std::string_view start_key, std::string_view end_key,
      size_t limit,
      const std::function<bool(std::string_view, std::string_view,
                               std::string*)>& transform,
      uint64_t* scanned = nullptr) const;

  /// Runs a vectorized scan fragment over ONE partition of a table on its
  /// master node (DESIGN.md "Vectorized scans & aggregate pushdown"). The
  /// caller owns the sink and merges partial states across partitions.
  Status FragmentScan(TableId table, uint32_t partition, size_t chunk_cells,
                      FragmentSink* sink, FragmentScanStats* stats) const;

  // --- Topology ----------------------------------------------------------

  StorageNode* node(uint32_t node_id);
  const StorageNode* node(uint32_t node_id) const;
  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  PartitionMap& partition_map() { return partition_map_; }
  const PartitionMap& partition_map() const { return partition_map_; }

  /// Per-partition lease epochs for the client record cache. Storage nodes
  /// bump them on every write; StorageClient samples them around cache
  /// fills and probes (store/record_cache.h).
  LeaseEpochTable& lease_epochs() { return lease_epochs_; }
  const LeaseEpochTable& lease_epochs() const { return lease_epochs_; }

  /// Number of storage nodes a request for `key` would touch (always 1;
  /// exposed for the client's batching logic: ops are grouped per master).
  Result<uint32_t> MasterOf(TableId table, std::string_view key) const;

  /// Sum of memory used across live nodes (capacity experiments, Fig 7).
  uint64_t TotalMemoryUsed() const;

 private:
  friend class ManagementNode;

  /// Resolves (table, key) to its partition and current master node, failing
  /// with Unavailable when the master is down (clients retry after the
  /// management node has failed over).
  struct Route {
    uint32_t partition;
    StorageNode* master;
    std::vector<StorageNode*> replicas;
    /// Migration cut-over window: write ops bounce with Unavailable (the
    /// client RetryPolicy re-routes them after the map unfreezes).
    bool write_frozen = false;
  };
  Result<Route> RouteFor(TableId table, std::string_view key) const;
  Result<Route> RouteForPartition(TableId table, uint32_t partition) const;

  /// Pushes a successful master write to every live backup.
  void Replicate(TableId table, uint32_t partition,
                 const std::vector<StorageNode*>& replicas,
                 std::string_view key, std::string_view value, uint64_t stamp);
  void ReplicateErase(TableId table, uint32_t partition,
                      const std::vector<StorageNode*>& replicas,
                      std::string_view key);

  const ClusterOptions options_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  PartitionMap partition_map_;
  LeaseEpochTable lease_epochs_;

  mutable std::shared_mutex catalog_mutex_;
  std::map<std::string, TableId> catalog_;
  TableId next_table_id_ = 1;
};

}  // namespace tell::store

#endif  // TELL_STORE_CLUSTER_H_
