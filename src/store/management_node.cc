#include "store/management_node.h"

#include <algorithm>
#include <mutex>

#include "common/logging.h"

namespace tell::store {

Result<uint32_t> ManagementNode::DetectAndRecover() {
  std::lock_guard<std::mutex> lock(recovery_mutex_);
  if (handled_.size() < cluster_->num_nodes()) {
    handled_.resize(cluster_->num_nodes(), false);
  }
  uint32_t recovered = 0;
  for (uint32_t id = 0; id < cluster_->num_nodes(); ++id) {
    StorageNode* node = cluster_->node(id);
    if (node->alive()) {
      handled_[id] = false;  // a revived node can fail again later
      continue;
    }
    if (handled_[id]) continue;
    Status st = RecoverNode(id);
    if (!st.ok()) return st;
    handled_[id] = true;
    ++recovered;
  }
  if (recovered > 0) {
    TELL_RETURN_NOT_OK(RestoreReplicationLevel());
  }
  return recovered;
}

Status ManagementNode::RecoverNode(uint32_t node_id) {
  TELL_LOG(kInfo) << "recovering failed storage node " << node_id;
  PartitionMap& map = cluster_->partition_map();
  // Drop the dead node from every placement; collect partitions that lost
  // their master copy.
  std::vector<std::pair<TableId, uint32_t>> orphaned = map.RemoveNode(node_id);
  for (const auto& [table, partition] : orphaned) {
    // Re-read the placement: replicas of this partition, now master-less.
    TELL_ASSIGN_OR_RETURN(PartitionPlacement placement,
                          map.PlacementOf(table, partition));
    uint32_t promoted = UINT32_MAX;
    for (uint32_t replica : placement.replicas) {
      if (cluster_->node(replica)->alive()) {
        promoted = replica;
        break;
      }
    }
    if (promoted == UINT32_MAX) {
      // With RF1 (or all replicas dead) acknowledged data is lost — exactly
      // the risk the paper's synchronous replication exists to avoid.
      return Status::Unavailable(
          "partition lost all copies; data unrecoverable (table " +
          std::to_string(table) + " partition " + std::to_string(partition) +
          ")");
    }
    TELL_RETURN_NOT_OK(map.PromoteReplica(table, partition, promoted));
  }
  return Status::OK();
}

Status ManagementNode::RestoreReplicationLevel() {
  PartitionMap& map = cluster_->partition_map();
  uint32_t target_rf = cluster_->options().replication_factor;
  for (const auto& [table, partition] : map.AllPartitions()) {
    TELL_ASSIGN_OR_RETURN(PartitionPlacement placement,
                          map.PlacementOf(table, partition));
    StorageNode* master = cluster_->node(placement.master);
    if (!master->alive()) continue;  // unrecoverable; reported elsewhere
    uint32_t live_copies = 1;
    for (uint32_t replica : placement.replicas) {
      if (cluster_->node(replica)->alive()) ++live_copies;
    }
    while (live_copies < target_rf) {
      // Pick a live node not yet hosting this partition.
      uint32_t candidate = UINT32_MAX;
      for (uint32_t id = 0; id < cluster_->num_nodes(); ++id) {
        if (!cluster_->node(id)->alive()) continue;
        if (id == placement.master) continue;
        if (std::find(placement.replicas.begin(), placement.replicas.end(),
                      id) != placement.replicas.end()) {
          continue;
        }
        candidate = id;
        break;
      }
      if (candidate == UINT32_MAX) break;  // not enough live nodes
      TELL_ASSIGN_OR_RETURN(std::vector<KeyCell> cells,
                            master->DumpPartition(table, partition));
      TELL_RETURN_NOT_OK(
          cluster_->node(candidate)->InstallPartition(table, partition, cells));
      TELL_RETURN_NOT_OK(map.AddReplica(table, partition, candidate));
      placement.replicas.push_back(candidate);
      ++live_copies;
      TELL_LOG(kInfo) << "re-replicated table " << table << " partition "
                      << partition << " onto node " << candidate;
    }
  }
  return Status::OK();
}

Status ManagementNode::MigratePartition(TableId table, uint32_t partition,
                                        uint32_t dest_node) {
  std::lock_guard<std::mutex> lock(recovery_mutex_);
  PartitionMap& map = cluster_->partition_map();
  TELL_ASSIGN_OR_RETURN(PartitionPlacement placement,
                        map.PlacementOf(table, partition));
  if (placement.master == dest_node) {
    return Status::InvalidArgument("destination already masters the partition");
  }
  if (dest_node >= cluster_->num_nodes()) {
    return Status::InvalidArgument("no such destination node");
  }
  StorageNode* src = cluster_->node(placement.master);
  StorageNode* dest = cluster_->node(dest_node);
  if (!src->alive() || !dest->alive()) {
    return Status::Unavailable("migration needs both endpoints alive");
  }
  {
    std::lock_guard<std::mutex> mlock(migration_mutex_);
    ++migration_stats_.started;
  }
  TELL_LOG(kInfo) << "migrating table " << table << " partition " << partition
                  << " from node " << placement.master << " to node "
                  << dest_node;

  // Phase 1 — bulk copy. Erase journaling starts BEFORE the watermark read
  // and the dump, so nothing disappearing after this point goes unrecorded.
  TELL_RETURN_NOT_OK(src->BeginMigrationLogging(table, partition));
  // Watermark before the dump: any write the dump misses carries a stamp
  // >= `watermark` and is caught by the next round.
  TELL_ASSIGN_OR_RETURN(uint64_t watermark,
                        src->PartitionNextStamp(table, partition));
  TELL_ASSIGN_OR_RETURN(std::vector<KeyCell> cells,
                        src->DumpPartition(table, partition));
  Status st = dest->InstallPartition(table, partition, cells);
  if (!st.ok()) {
    (void)src->EndMigrationLogging(table, partition);
    return st;
  }
  {
    std::lock_guard<std::mutex> mlock(migration_mutex_);
    migration_stats_.cells_copied += cells.size();
  }

  // Phase 2 — catch-up rounds while writes continue. Each round ships what
  // changed since the previous watermark; under steady load the delta stops
  // shrinking, so the round count is bounded and the remainder moves inside
  // the freeze.
  for (uint32_t round = 0; round < 4; ++round) {
    TELL_ASSIGN_OR_RETURN(uint64_t next_watermark,
                          src->PartitionNextStamp(table, partition));
    TELL_ASSIGN_OR_RETURN(std::vector<KeyCell> delta,
                          src->DumpPartitionSince(table, partition, watermark));
    TELL_ASSIGN_OR_RETURN(std::vector<MigrationOp> erases,
                          src->ErasesSince(table, partition, watermark));
    if (delta.empty() && erases.empty()) break;
    std::vector<MigrationOp> ops;
    ops.reserve(delta.size() + erases.size());
    for (KeyCell& cell : delta) {
      ops.push_back(
          {std::move(cell.key), std::move(cell.value), cell.stamp, false});
    }
    ops.insert(ops.end(), std::make_move_iterator(erases.begin()),
               std::make_move_iterator(erases.end()));
    std::sort(ops.begin(), ops.end(),
              [](const MigrationOp& a, const MigrationOp& b) {
                return a.stamp < b.stamp;
              });
    uint64_t erases_applied = 0;
    st = dest->InstallMigrationDelta(table, partition, ops, &erases_applied);
    if (!st.ok()) {
      (void)src->EndMigrationLogging(table, partition);
      return st;
    }
    {
      std::lock_guard<std::mutex> mlock(migration_mutex_);
      ++migration_stats_.delta_rounds;
      migration_stats_.delta_cells += delta.size();
      migration_stats_.erases_applied += erases_applied;
    }
    watermark = next_watermark;
  }

  // Phase 3 — cut-over. Freeze routes (new writes bounce and retry), then
  // seal the source under every stripe lock: in-flight writes that raced
  // the freeze have finished by the time the seal holds all locks, and the
  // sealed final delta includes them. After this the source image is final.
  TELL_RETURN_NOT_OK(map.FreezeWrites(table, partition));
  auto final_ops = src->SealPartitionAndDump(table, partition, watermark);
  if (!final_ops.ok()) {
    (void)map.UnfreezeWrites(table, partition);
    (void)src->EndMigrationLogging(table, partition);
    return final_ops.status();
  }
  uint64_t erases_applied = 0;
  st = dest->InstallMigrationDelta(table, partition, *final_ops,
                                   &erases_applied);
  if (!st.ok()) {
    // The source is sealed and the map frozen — this partition cannot
    // accept writes until an operator intervenes. Surface the error rather
    // than unfreeze onto a sealed master.
    return st;
  }
  TELL_RETURN_NOT_OK(map.MovePartitionMaster(table, partition, dest_node));
  TELL_RETURN_NOT_OK(map.UnfreezeWrites(table, partition));
  {
    std::lock_guard<std::mutex> mlock(migration_mutex_);
    ++migration_stats_.delta_rounds;
    for (const MigrationOp& op : *final_ops) {
      if (!op.is_erase) ++migration_stats_.delta_cells;
    }
    migration_stats_.erases_applied += erases_applied;
    ++migration_stats_.completed;
  }
  TELL_LOG(kInfo) << "migration of table " << table << " partition "
                  << partition << " complete (" << cells.size()
                  << " cells bulk-copied)";
  return Status::OK();
}

MigrationStats ManagementNode::migration_stats() const {
  std::lock_guard<std::mutex> lock(migration_mutex_);
  return migration_stats_;
}

bool ManagementNode::ReplicationLevelRestored() const {
  const PartitionMap& map = cluster_->partition_map();
  uint32_t target_rf = cluster_->options().replication_factor;
  uint32_t live_nodes = 0;
  for (uint32_t id = 0; id < cluster_->num_nodes(); ++id) {
    if (cluster_->node(id)->alive()) ++live_nodes;
  }
  uint32_t achievable = std::min(target_rf, live_nodes);
  for (const auto& [table, partition] : map.AllPartitions()) {
    auto placement = map.PlacementOf(table, partition);
    if (!placement.ok()) return false;
    if (!cluster_->node(placement->master)->alive()) return false;
    uint32_t live_copies = 1;
    for (uint32_t replica : placement->replicas) {
      if (cluster_->node(replica)->alive()) ++live_copies;
    }
    if (live_copies < achievable) return false;
  }
  return true;
}

}  // namespace tell::store
