#include "store/management_node.h"

#include <algorithm>
#include <mutex>

#include "common/logging.h"

namespace tell::store {

Result<uint32_t> ManagementNode::DetectAndRecover() {
  std::lock_guard<std::mutex> lock(recovery_mutex_);
  if (handled_.size() < cluster_->num_nodes()) {
    handled_.resize(cluster_->num_nodes(), false);
  }
  uint32_t recovered = 0;
  for (uint32_t id = 0; id < cluster_->num_nodes(); ++id) {
    StorageNode* node = cluster_->node(id);
    if (node->alive()) {
      handled_[id] = false;  // a revived node can fail again later
      continue;
    }
    if (handled_[id]) continue;
    Status st = RecoverNode(id);
    if (!st.ok()) return st;
    handled_[id] = true;
    ++recovered;
  }
  if (recovered > 0) {
    TELL_RETURN_NOT_OK(RestoreReplicationLevel());
  }
  return recovered;
}

Status ManagementNode::RecoverNode(uint32_t node_id) {
  TELL_LOG(kInfo) << "recovering failed storage node " << node_id;
  PartitionMap& map = cluster_->partition_map();
  // Drop the dead node from every placement; collect partitions that lost
  // their master copy.
  std::vector<std::pair<TableId, uint32_t>> orphaned = map.RemoveNode(node_id);
  for (const auto& [table, partition] : orphaned) {
    // Re-read the placement: replicas of this partition, now master-less.
    TELL_ASSIGN_OR_RETURN(PartitionPlacement placement,
                          map.PlacementOf(table, partition));
    uint32_t promoted = UINT32_MAX;
    for (uint32_t replica : placement.replicas) {
      if (cluster_->node(replica)->alive()) {
        promoted = replica;
        break;
      }
    }
    if (promoted == UINT32_MAX) {
      // With RF1 (or all replicas dead) acknowledged data is lost — exactly
      // the risk the paper's synchronous replication exists to avoid.
      return Status::Unavailable(
          "partition lost all copies; data unrecoverable (table " +
          std::to_string(table) + " partition " + std::to_string(partition) +
          ")");
    }
    TELL_RETURN_NOT_OK(map.PromoteReplica(table, partition, promoted));
  }
  return Status::OK();
}

Status ManagementNode::RestoreReplicationLevel() {
  PartitionMap& map = cluster_->partition_map();
  uint32_t target_rf = cluster_->options().replication_factor;
  for (const auto& [table, partition] : map.AllPartitions()) {
    TELL_ASSIGN_OR_RETURN(PartitionPlacement placement,
                          map.PlacementOf(table, partition));
    StorageNode* master = cluster_->node(placement.master);
    if (!master->alive()) continue;  // unrecoverable; reported elsewhere
    uint32_t live_copies = 1;
    for (uint32_t replica : placement.replicas) {
      if (cluster_->node(replica)->alive()) ++live_copies;
    }
    while (live_copies < target_rf) {
      // Pick a live node not yet hosting this partition.
      uint32_t candidate = UINT32_MAX;
      for (uint32_t id = 0; id < cluster_->num_nodes(); ++id) {
        if (!cluster_->node(id)->alive()) continue;
        if (id == placement.master) continue;
        if (std::find(placement.replicas.begin(), placement.replicas.end(),
                      id) != placement.replicas.end()) {
          continue;
        }
        candidate = id;
        break;
      }
      if (candidate == UINT32_MAX) break;  // not enough live nodes
      TELL_ASSIGN_OR_RETURN(std::vector<KeyCell> cells,
                            master->DumpPartition(table, partition));
      TELL_RETURN_NOT_OK(
          cluster_->node(candidate)->InstallPartition(table, partition, cells));
      TELL_RETURN_NOT_OK(map.AddReplica(table, partition, candidate));
      placement.replicas.push_back(candidate);
      ++live_copies;
      TELL_LOG(kInfo) << "re-replicated table " << table << " partition "
                      << partition << " onto node " << candidate;
    }
  }
  return Status::OK();
}

bool ManagementNode::ReplicationLevelRestored() const {
  const PartitionMap& map = cluster_->partition_map();
  uint32_t target_rf = cluster_->options().replication_factor;
  uint32_t live_nodes = 0;
  for (uint32_t id = 0; id < cluster_->num_nodes(); ++id) {
    if (cluster_->node(id)->alive()) ++live_nodes;
  }
  uint32_t achievable = std::min(target_rf, live_nodes);
  for (const auto& [table, partition] : map.AllPartitions()) {
    auto placement = map.PlacementOf(table, partition);
    if (!placement.ok()) return false;
    if (!cluster_->node(placement->master)->alive()) return false;
    uint32_t live_copies = 1;
    for (uint32_t replica : placement->replicas) {
      if (cluster_->node(replica)->alive()) ++live_copies;
    }
    if (live_copies < achievable) return false;
  }
  return true;
}

}  // namespace tell::store
