#ifndef TELL_SQL_SCAN_FRAGMENT_H_
#define TELL_SQL_SCAN_FRAGMENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "schema/schema.h"
#include "schema/tuple.h"
#include "sql/ast.h"
#include "store/fragment.h"

namespace tell::sql {

/// One partial-aggregate fold, bit-compatible with Executor::ExecuteSelect's
/// per-group loop: NULLs are skipped, the running sum is a double (ints
/// widened, strings contribute 0.0), min/max track by schema::CompareValues.
/// Partition-local folds merge commutatively; the double sum reassociates
/// across partitions, so SUM/AVG over values that are not exactly
/// representable may differ from the single-pass result in the last ulps
/// (DESIGN.md "Vectorized scans & aggregate pushdown").
struct AggFold {
  int64_t count = 0;
  double sum = 0.0;
  schema::Value min_v;
  schema::Value max_v;

  void Add(const schema::Value& v);
  void MergeFrom(const AggFold& other);
  /// Finalizes exactly like the executor's switch: COUNT -> count, empty
  /// SUM/AVG/MIN/MAX -> NULL, AVG = sum / count.
  schema::Value Final(AggregateFunc func) const;
};

/// Appends one group-by column value to a group key, byte-identical to the
/// executor's grouping loop (ValueToString + 0x1F separator).
void AppendGroupKey(const schema::Value& value, std::string* key);

/// Serializable descriptor of a storage-side analytical scan: predicate,
/// projection list, and partial-aggregate spec with optional GROUP BY.
/// The planner lowers an eligible SELECT (full scan, no join, aggregates
/// and/or GROUP BY) into one of these; the executor fans it out to every
/// partition via StorageClient::ExecuteFragmentScan.
///
/// Expr pointers reach into the owning Plan's Statement (heap AST nodes,
/// stable across Plan moves); the fragment must not outlive its Plan.
struct ScanFragment {
  struct AggSpec {
    AggregateFunc func = AggregateFunc::kNone;
    bool count_star = false;
    const Expr* expr = nullptr;  // null for COUNT(*)
  };

  const Expr* predicate = nullptr;  // null = no WHERE
  std::vector<AggSpec> items;       // one per SELECT item, in output order
  std::vector<uint32_t> group_by;   // source-tuple column indices
  /// Projection list: the source columns the fragment actually reads
  /// (predicate + item expressions + group-by), sorted ascending. Columns
  /// outside this set never leave the storage node.
  std::vector<uint32_t> columns_needed;

  /// Wire encoding of the descriptor; its size is what the client charges
  /// as the per-partition request payload.
  std::string SerializeDescriptor() const;
};

/// Source columns referenced by the fragment's predicate, item expressions
/// and GROUP BY — the projection list, sorted and deduplicated.
std::vector<uint32_t> CollectFragmentColumns(const ScanFragment& fragment);

/// Typed storage-side consumer of one partition's fragment scan. Implements
/// the schema-agnostic store::FragmentSink: per absorbed cell it applies the
/// transaction's snapshot-visibility closure, decodes the visible payload,
/// filters, and folds into per-group partial states. Finish() serializes
/// the states — O(groups) bytes, the fragment's whole response.
class AggregateFragmentSink : public store::FragmentSink {
 public:
  /// Judges a stored cell under the owning transaction's snapshot: returns
  /// true and fills `*payload` with the visible version's bytes, or false
  /// when no live version is visible (tx::Transaction::VisibilityClosure).
  using VisibleFn =
      std::function<bool(std::string_view cell_value, std::string* payload)>;

  /// Per-group partial state. `first_rid`/`first_values` carry the
  /// lowest-rid member's non-aggregate item values so the merged result
  /// evaluates plain items on the globally first member, exactly like the
  /// executor's members[0].
  struct GroupState {
    uint64_t first_rid = 0;
    std::vector<schema::Value> first_values;
    int64_t count_star = 0;
    std::vector<AggFold> folds;  // one per item; unused for kNone/COUNT(*)
  };

  AggregateFragmentSink(const schema::Schema* schema,
                        const ScanFragment* fragment, VisibleFn visible)
      : schema_(schema), fragment_(fragment), visible_(std::move(visible)) {}

  bool Absorb(std::string_view key, std::string_view value) override;
  std::string Finish() override;
  uint64_t rows_returned() const override { return groups_.size(); }
  uint64_t baseline_bytes() const override { return baseline_bytes_; }
  Status status() const override { return status_; }

  /// Typed partial states for the coordinator's merge (the serialized form
  /// from Finish() models the wire; the merge reads these directly).
  const std::map<std::string, GroupState>& groups() const { return groups_; }

 private:
  const schema::Schema* const schema_;
  const ScanFragment* const fragment_;
  const VisibleFn visible_;
  std::map<std::string, GroupState> groups_;
  uint64_t baseline_bytes_ = 0;
  Status status_ = Status::OK();
  std::string payload_;  // scratch, reused across cells
};

/// Merges one partition's partial state into the accumulating map:
/// commutative fold merge, keeping the lowest-rid first-member values.
void MergeGroupStates(
    const std::map<std::string, AggregateFragmentSink::GroupState>& from,
    std::map<std::string, AggregateFragmentSink::GroupState>* into);

}  // namespace tell::sql

#endif  // TELL_SQL_SCAN_FRAGMENT_H_
