#include "sql/executor.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"

namespace tell::sql {

using schema::Tuple;
using schema::Value;

bool ValueIsTruthy(const Value& value) {
  if (schema::ValueIsNull(value)) return false;
  if (const int64_t* i = std::get_if<int64_t>(&value)) return *i != 0;
  if (const double* d = std::get_if<double>(&value)) return *d != 0.0;
  return !std::get<std::string>(value).empty();
}

Result<Value> EvalExpr(const Expr* expr, const Tuple& tuple) {
  switch (expr->kind) {
    case Expr::Kind::kLiteral:
      return expr->literal;
    case Expr::Kind::kColumnRef:
      if (expr->column_index >= tuple.size()) {
        return Status::InternalError("unresolved column reference '" +
                                     expr->column_name + "'");
      }
      return tuple.at(expr->column_index);
    case Expr::Kind::kIsNull: {
      TELL_ASSIGN_OR_RETURN(Value child, EvalExpr(expr->child.get(), tuple));
      bool is_null = schema::ValueIsNull(child);
      return Value(static_cast<int64_t>(expr->negated ? !is_null : is_null));
    }
    case Expr::Kind::kNot: {
      TELL_ASSIGN_OR_RETURN(Value child, EvalExpr(expr->child.get(), tuple));
      return Value(static_cast<int64_t>(!ValueIsTruthy(child)));
    }
    case Expr::Kind::kBinary:
      break;
  }
  TELL_ASSIGN_OR_RETURN(Value left, EvalExpr(expr->left.get(), tuple));
  // Short-circuit logic ops.
  if (expr->op == BinaryOp::kAnd) {
    if (!ValueIsTruthy(left)) return Value(int64_t{0});
    TELL_ASSIGN_OR_RETURN(Value right, EvalExpr(expr->right.get(), tuple));
    return Value(static_cast<int64_t>(ValueIsTruthy(right)));
  }
  if (expr->op == BinaryOp::kOr) {
    if (ValueIsTruthy(left)) return Value(int64_t{1});
    TELL_ASSIGN_OR_RETURN(Value right, EvalExpr(expr->right.get(), tuple));
    return Value(static_cast<int64_t>(ValueIsTruthy(right)));
  }
  TELL_ASSIGN_OR_RETURN(Value right, EvalExpr(expr->right.get(), tuple));

  switch (expr->op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (schema::ValueIsNull(left) || schema::ValueIsNull(right)) {
        return Value(int64_t{0});  // NULL comparisons are never true
      }
      int cmp = schema::CompareValues(left, right);
      bool result = false;
      switch (expr->op) {
        case BinaryOp::kEq: result = cmp == 0; break;
        case BinaryOp::kNe: result = cmp != 0; break;
        case BinaryOp::kLt: result = cmp < 0; break;
        case BinaryOp::kLe: result = cmp <= 0; break;
        case BinaryOp::kGt: result = cmp > 0; break;
        case BinaryOp::kGe: result = cmp >= 0; break;
        default: break;
      }
      return Value(static_cast<int64_t>(result));
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (schema::ValueIsNull(left) || schema::ValueIsNull(right)) {
        return Value(std::monostate{});
      }
      bool both_int = std::holds_alternative<int64_t>(left) &&
                      std::holds_alternative<int64_t>(right);
      auto as_double = [](const Value& v) {
        if (const int64_t* i = std::get_if<int64_t>(&v)) {
          return static_cast<double>(*i);
        }
        if (const double* d = std::get_if<double>(&v)) return *d;
        return 0.0;
      };
      if (both_int) {
        int64_t a = std::get<int64_t>(left);
        int64_t b = std::get<int64_t>(right);
        switch (expr->op) {
          case BinaryOp::kAdd: return Value(a + b);
          case BinaryOp::kSub: return Value(a - b);
          case BinaryOp::kMul: return Value(a * b);
          case BinaryOp::kDiv:
            if (b == 0) return Status::InvalidArgument("division by zero");
            return Value(a / b);
          default: break;
        }
      }
      double a = as_double(left);
      double b = as_double(right);
      switch (expr->op) {
        case BinaryOp::kAdd: return Value(a + b);
        case BinaryOp::kSub: return Value(a - b);
        case BinaryOp::kMul: return Value(a * b);
        case BinaryOp::kDiv:
          if (b == 0.0) return Status::InvalidArgument("division by zero");
          return Value(a / b);
        default: break;
      }
      break;
    }
    default:
      break;
  }
  return Status::InternalError("unhandled binary operator");
}

std::string ResultSet::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < columns.size(); ++i) {
    out << (i == 0 ? "" : " | ") << columns[i];
  }
  if (!columns.empty()) out << "\n";
  for (const Tuple& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "" : " | ") << schema::ValueToString(row.at(i));
    }
    out << "\n";
  }
  if (columns.empty()) {
    out << affected_rows << " row(s) affected\n";
  }
  return out.str();
}

Result<std::vector<std::pair<uint64_t, Tuple>>> Executor::FetchRows(
    tx::Transaction* txn, tx::TableHandle* handle, const Plan& plan,
    const Expr* where, size_t limit) {
  std::vector<std::pair<uint64_t, Tuple>> rows;
  switch (plan.access.kind) {
    case AccessPath::Kind::kIndexPoint: {
      TELL_ASSIGN_OR_RETURN(
          std::vector<uint64_t> rids,
          txn->LookupIndex(handle, plan.access.index, plan.access.point_key));
      for (uint64_t rid : rids) {
        TELL_ASSIGN_OR_RETURN(std::optional<Tuple> tuple,
                              txn->Read(handle, rid));
        if (tuple.has_value()) rows.emplace_back(rid, std::move(*tuple));
      }
      break;
    }
    case AccessPath::Kind::kIndexRange: {
      TELL_ASSIGN_OR_RETURN(
          rows, txn->ScanIndexEncoded(handle, plan.access.index,
                                      plan.access.range_lo,
                                      plan.access.range_hi, /*limit=*/0));
      break;
    }
    case AccessPath::Kind::kFullScan: {
      if (pushdown_ && where != nullptr) {
        // §5.2: evaluate the WHERE clause on the storage nodes; only
        // matching records cross the network, and a pushed-down LIMIT lets
        // every partition stop scanning early.
        TELL_ASSIGN_OR_RETURN(
            rows, txn->FilteredScan(
                      handle,
                      [where](const Tuple& tuple) {
                        auto pass = EvalExpr(where, tuple);
                        return pass.ok() && ValueIsTruthy(*pass);
                      },
                      limit));
        return rows;
      }
      TELL_ASSIGN_OR_RETURN(
          rows, txn->ScanIndexEncoded(handle, /*index=*/-1, "", "",
                                      where == nullptr ? limit : 0));
      break;
    }
  }
  if (where == nullptr) return rows;
  std::vector<std::pair<uint64_t, Tuple>> filtered;
  filtered.reserve(rows.size());
  for (auto& [rid, tuple] : rows) {
    TELL_ASSIGN_OR_RETURN(Value pass, EvalExpr(where, tuple));
    if (ValueIsTruthy(pass)) filtered.emplace_back(rid, std::move(tuple));
  }
  return filtered;
}

namespace {

// ORDER BY, resolved by the planner: select-star orders by source columns
// (identical to output columns for star), projections by output position.
void ApplyOrderByAndLimit(const Plan& plan, ResultSet* result) {
  if (!plan.order_by.empty()) {
    std::stable_sort(
        result->rows.begin(), result->rows.end(),
        [&](const Tuple& a, const Tuple& b) {
          for (const Plan::ResolvedOrderBy& key : plan.order_by) {
            int cmp = schema::CompareValues(a.at(key.index), b.at(key.index));
            if (cmp != 0) return key.descending ? cmp > 0 : cmp < 0;
          }
          return false;
        });
  }
  if (plan.statement.select.limit.has_value() &&
      result->rows.size() > *plan.statement.select.limit) {
    result->rows.resize(*plan.statement.select.limit);
  }
}

}  // namespace

Result<std::vector<std::pair<uint64_t, Tuple>>> Executor::HashJoin(
    tx::Transaction* txn, tx::TableHandle* left, tx::TableHandle* right,
    const Plan& plan) {
  // Materialize both sides ("data is shipped to the query") and hash-join
  // on the equality columns. Any PN can do this over any tables — there is
  // no cross-partition restriction in a shared-data architecture.
  TELL_ASSIGN_OR_RETURN(
      auto left_rows,
      txn->ScanIndexEncoded(left, /*index=*/-1, "", "", /*limit=*/0));
  TELL_ASSIGN_OR_RETURN(
      auto right_rows,
      txn->ScanIndexEncoded(right, /*index=*/-1, "", "", /*limit=*/0));
  std::unordered_map<std::string, std::vector<const Tuple*>> build;
  build.reserve(right_rows.size());
  for (const auto& [rid, tuple] : right_rows) {
    const Value& key = tuple.at(plan.join_right_column);
    if (schema::ValueIsNull(key)) continue;  // NULL never joins
    auto encoded = schema::EncodeIndexKeyValues({key});
    if (!encoded.ok()) continue;
    build[*encoded].push_back(&tuple);
  }
  std::vector<std::pair<uint64_t, Tuple>> out;
  for (const auto& [rid, tuple] : left_rows) {
    const Value& key = tuple.at(plan.join_left_column);
    if (schema::ValueIsNull(key)) continue;
    auto encoded = schema::EncodeIndexKeyValues({key});
    if (!encoded.ok()) continue;
    auto it = build.find(*encoded);
    if (it == build.end()) continue;
    for (const Tuple* match : it->second) {
      std::vector<Value> combined = tuple.values();
      combined.insert(combined.end(), match->values().begin(),
                      match->values().end());
      out.emplace_back(rid, Tuple(std::move(combined)));
    }
  }
  return out;
}

Result<ResultSet> Executor::ExecuteSelect(tx::Transaction* txn,
                                          tx::TableHandle* handle,
                                          tx::TableRegistry* registry,
                                          const Plan& plan) {
  const SelectStatement& select = plan.statement.select;

  bool has_aggregate = false;
  for (const SelectItem& item : select.items) {
    if (item.aggregate != AggregateFunc::kNone) has_aggregate = true;
  }

  // Vectorized path: eligible aggregates run as storage-side scan
  // fragments. Buffered dirty writes on the table would be invisible to the
  // storage nodes, so those queries stay on the row path.
  if (pushdown_ && plan.fragment.has_value() && plan.join_table == nullptr &&
      !txn->HasDirtyWrites(handle)) {
    return ExecuteFragmentSelect(txn, handle, plan);
  }

  // A LIMIT can stop storage-side scans early only when no executor stage
  // after the scan (join, grouping, ORDER BY) can change which rows make
  // the cut.
  size_t fetch_limit = 0;
  if (select.limit.has_value() && plan.join_table == nullptr &&
      !has_aggregate && select.group_by.empty() && plan.order_by.empty()) {
    fetch_limit = *select.limit;
  }

  std::vector<std::pair<uint64_t, Tuple>> rows;
  if (plan.join_table != nullptr) {
    TELL_ASSIGN_OR_RETURN(tx::TableHandle * right,
                          registry->Find(plan.join_table->name));
    TELL_ASSIGN_OR_RETURN(rows, HashJoin(txn, handle, right, plan));
    if (select.where != nullptr) {
      std::vector<std::pair<uint64_t, Tuple>> filtered;
      for (auto& [rid, tuple] : rows) {
        TELL_ASSIGN_OR_RETURN(Value pass, EvalExpr(select.where.get(), tuple));
        if (ValueIsTruthy(pass)) filtered.emplace_back(rid, std::move(tuple));
      }
      rows = std::move(filtered);
    }
  } else {
    TELL_ASSIGN_OR_RETURN(
        rows, FetchRows(txn, handle, plan, select.where.get(), fetch_limit));
  }

  ResultSet result;
  result.columns = plan.output_columns;

  if (has_aggregate || !select.group_by.empty()) {
    // Group rows by the GROUP BY key (single group when absent).
    const std::vector<uint32_t>& group_columns = plan.group_by_columns;
    std::map<std::string, std::vector<const Tuple*>> groups;
    for (const auto& [rid, tuple] : rows) {
      std::string key;
      for (uint32_t column : group_columns) {
        key += schema::ValueToString(tuple.at(column));
        key.push_back('\x1F');
      }
      groups[key].push_back(&tuple);
    }
    if (groups.empty() && group_columns.empty()) {
      groups.emplace("", std::vector<const Tuple*>{});
    }
    for (const auto& [key, members] : groups) {
      Tuple out(select.items.size());
      for (size_t i = 0; i < select.items.size(); ++i) {
        const SelectItem& item = select.items[i];
        if (item.aggregate == AggregateFunc::kNone) {
          // Must be a group-by column (or any expr over it); evaluate on the
          // first member.
          if (members.empty()) {
            out.Set(i, std::monostate{});
          } else {
            TELL_ASSIGN_OR_RETURN(Value v,
                                  EvalExpr(item.expr.get(), *members[0]));
            out.Set(i, std::move(v));
          }
          continue;
        }
        if (item.count_star) {
          out.Set(i, static_cast<int64_t>(members.size()));
          continue;
        }
        // Aggregate over the member expression values (NULLs skipped).
        double sum = 0;
        int64_t count = 0;
        Value min_v, max_v;
        for (const Tuple* member : members) {
          TELL_ASSIGN_OR_RETURN(Value v, EvalExpr(item.expr.get(), *member));
          if (schema::ValueIsNull(v)) continue;
          double d = std::holds_alternative<int64_t>(v)
                         ? static_cast<double>(std::get<int64_t>(v))
                         : (std::holds_alternative<double>(v)
                                ? std::get<double>(v)
                                : 0.0);
          sum += d;
          if (count == 0 || schema::CompareValues(v, min_v) < 0) min_v = v;
          if (count == 0 || schema::CompareValues(v, max_v) > 0) max_v = v;
          ++count;
        }
        switch (item.aggregate) {
          case AggregateFunc::kCount:
            out.Set(i, count);
            break;
          case AggregateFunc::kSum:
            out.Set(i, count == 0 ? Value(std::monostate{}) : Value(sum));
            break;
          case AggregateFunc::kAvg:
            out.Set(i, count == 0 ? Value(std::monostate{})
                                  : Value(sum / static_cast<double>(count)));
            break;
          case AggregateFunc::kMin:
            out.Set(i, count == 0 ? Value(std::monostate{}) : min_v);
            break;
          case AggregateFunc::kMax:
            out.Set(i, count == 0 ? Value(std::monostate{}) : max_v);
            break;
          default:
            break;
        }
      }
      result.rows.push_back(std::move(out));
    }
  } else {
    // Plain projection.
    for (const auto& [rid, tuple] : rows) {
      if (select.select_star) {
        result.rows.push_back(tuple);
        continue;
      }
      Tuple out(select.items.size());
      for (size_t i = 0; i < select.items.size(); ++i) {
        TELL_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(select.items[i].expr.get(), tuple));
        out.Set(i, std::move(v));
      }
      result.rows.push_back(std::move(out));
    }
  }

  ApplyOrderByAndLimit(plan, &result);
  return result;
}

Result<ResultSet> Executor::ExecuteFragmentSelect(tx::Transaction* txn,
                                                  tx::TableHandle* handle,
                                                  const Plan& plan) {
  const SelectStatement& select = plan.statement.select;
  const ScanFragment& fragment = *plan.fragment;
  const schema::Schema& schema = handle->meta->schema;
  const uint64_t descriptor_bytes = fragment.SerializeDescriptor().size();
  // The visibility closure carries the transaction's snapshot to the
  // storage nodes; every chunk of every partition is judged under it, so
  // the fragmented scan sees one consistent snapshot.
  auto visible = txn->VisibilityClosure();
  store::FragmentSinkFactory make_sink =
      [&schema, &fragment, &visible](uint32_t) {
        return std::unique_ptr<store::FragmentSink>(
            new AggregateFragmentSink(&schema, &fragment, visible));
      };
  TELL_ASSIGN_OR_RETURN(
      store::FragmentScanOutcome outcome,
      txn->ExecuteScanFragment(handle, descriptor_bytes, make_sink));

  // Merge the per-partition partial states. map keeps group order identical
  // to the row path (both key by ValueToString + 0x1F).
  std::map<std::string, AggregateFragmentSink::GroupState> merged;
  for (const auto& sink : outcome.sinks) {
    auto* agg = static_cast<AggregateFragmentSink*>(sink.get());
    TELL_RETURN_NOT_OK(agg->status());
    MergeGroupStates(agg->groups(), &merged);
  }
  if (merged.empty() && fragment.group_by.empty()) {
    // SELECT COUNT(*) over an empty table still yields one row.
    AggregateFragmentSink::GroupState empty;
    empty.first_values.resize(fragment.items.size());
    empty.folds.resize(fragment.items.size());
    merged.emplace("", std::move(empty));
  }

  ResultSet result;
  result.columns = plan.output_columns;
  for (const auto& [key, state] : merged) {
    Tuple out(select.items.size());
    for (size_t i = 0; i < fragment.items.size(); ++i) {
      const ScanFragment::AggSpec& spec = fragment.items[i];
      if (spec.func == AggregateFunc::kNone) {
        // Plain item: the globally first member's value (NULL when the
        // group is empty), exactly like the row path's members[0].
        out.Set(i, state.count_star == 0 ? Value(std::monostate{})
                                         : state.first_values[i]);
        continue;
      }
      if (spec.count_star) {
        out.Set(i, static_cast<int64_t>(state.count_star));
        continue;
      }
      out.Set(i, state.folds[i].Final(spec.func));
    }
    result.rows.push_back(std::move(out));
  }
  ApplyOrderByAndLimit(plan, &result);
  return result;
}

Result<ResultSet> Executor::ExecuteInsert(tx::Transaction* txn,
                                          tx::TableHandle* handle,
                                          const Plan& plan) {
  const InsertStatement& insert = plan.statement.insert;
  const schema::Schema& schema = handle->meta->schema;
  ResultSet result;
  for (const auto& row : insert.rows) {
    Tuple tuple(schema.num_columns());
    if (insert.columns.empty()) {
      for (size_t i = 0; i < row.size(); ++i) {
        TELL_ASSIGN_OR_RETURN(Value v, EvalExpr(row[i].get(), tuple));
        tuple.Set(i, std::move(v));
      }
    } else {
      for (size_t i = 0; i < insert.columns.size(); ++i) {
        TELL_ASSIGN_OR_RETURN(uint32_t idx,
                              schema.ColumnIndex(insert.columns[i]));
        TELL_ASSIGN_OR_RETURN(Value v, EvalExpr(row[i].get(), tuple));
        tuple.Set(idx, std::move(v));
      }
    }
    TELL_RETURN_NOT_OK(txn->Insert(handle, tuple).status());
    ++result.affected_rows;
  }
  return result;
}

Result<ResultSet> Executor::ExecuteUpdate(tx::Transaction* txn,
                                          tx::TableHandle* handle,
                                          const Plan& plan) {
  const UpdateStatement& update = plan.statement.update;
  const schema::Schema& schema = handle->meta->schema;
  TELL_ASSIGN_OR_RETURN(
      auto rows, FetchRows(txn, handle, plan, update.where.get()));
  ResultSet result;
  for (auto& [rid, tuple] : rows) {
    Tuple updated = tuple;
    for (const auto& [column, expr] : update.assignments) {
      TELL_ASSIGN_OR_RETURN(uint32_t idx, schema.ColumnIndex(column));
      TELL_ASSIGN_OR_RETURN(Value v, EvalExpr(expr.get(), tuple));
      updated.Set(idx, std::move(v));
    }
    TELL_RETURN_NOT_OK(txn->Update(handle, rid, updated));
    ++result.affected_rows;
  }
  return result;
}

Result<ResultSet> Executor::ExecuteDelete(tx::Transaction* txn,
                                          tx::TableHandle* handle,
                                          const Plan& plan) {
  const DeleteStatement& del = plan.statement.delete_;
  TELL_ASSIGN_OR_RETURN(auto rows,
                        FetchRows(txn, handle, plan, del.where.get()));
  ResultSet result;
  for (const auto& [rid, tuple] : rows) {
    TELL_RETURN_NOT_OK(txn->Delete(handle, rid));
    ++result.affected_rows;
  }
  return result;
}

Result<ResultSet> Executor::Execute(tx::Transaction* txn,
                                    tx::TableRegistry* registry,
                                    const Plan& plan) {
  if (plan.table == nullptr) {
    return Status::InvalidArgument("DDL statements go through the database");
  }
  TELL_ASSIGN_OR_RETURN(tx::TableHandle * handle,
                        registry->Find(plan.table->name));
  switch (plan.statement.kind) {
    case Statement::Kind::kSelect:
      return ExecuteSelect(txn, handle, registry, plan);
    case Statement::Kind::kInsert:
      return ExecuteInsert(txn, handle, plan);
    case Statement::Kind::kUpdate:
      return ExecuteUpdate(txn, handle, plan);
    case Statement::Kind::kDelete:
      return ExecuteDelete(txn, handle, plan);
    default:
      return Status::InvalidArgument("unsupported statement kind");
  }
}

}  // namespace tell::sql
