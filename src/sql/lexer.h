#ifndef TELL_SQL_LEXER_H_
#define TELL_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tell::sql {

enum class TokenType {
  kKeyword,     // upper-cased SQL keyword
  kIdentifier,  // table / column name
  kInteger,
  kFloat,
  kString,      // 'quoted'
  kSymbol,      // ( ) , * = < > <= >= <> + - / .
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;  // keywords upper-cased, identifiers lower-cased
  size_t position = 0;
};

/// Tokenizes one SQL statement. Keywords are recognized case-insensitively.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace tell::sql

#endif  // TELL_SQL_LEXER_H_
