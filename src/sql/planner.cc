#include "sql/planner.h"

#include <algorithm>
#include <map>

#include "schema/tuple.h"

namespace tell::sql {

namespace {

/// Resolves "col" / "table.col" names into positions of the (possibly
/// concatenated) source tuple. For joins, left columns come first and right
/// columns are appended.
class NameResolver {
 public:
  /// `left_name`/`right_name` are the names column refs may qualify with
  /// (the table name, or its alias when the query declares one).
  NameResolver(const tx::TableMeta* left, const std::string& left_name,
               const tx::TableMeta* right, const std::string& right_name) {
    AddTable(left, left_name, 0);
    if (right != nullptr) {
      AddTable(right, right_name,
               static_cast<uint32_t>(left->schema.num_columns()));
    }
  }

  Result<uint32_t> Resolve(const std::string& name) const {
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::NotFound("no column '" + name + "'");
    }
    if (it->second < 0) {
      return Status::InvalidArgument("ambiguous column '" + name +
                                     "' — qualify it as table.column");
    }
    return static_cast<uint32_t>(it->second);
  }

  /// Column names for SELECT *: plain when unique, table-qualified when the
  /// same name exists on both sides.
  std::vector<std::string> StarColumnNames() const { return star_names_; }

 private:
  void AddTable(const tx::TableMeta* table, const std::string& name,
                uint32_t offset) {
    for (uint32_t i = 0; i < table->schema.num_columns(); ++i) {
      const std::string& column = table->schema.column(i).name;
      std::string qualified = name + "." + column;
      entries_[qualified] = static_cast<int>(offset + i);
      auto [it, inserted] =
          entries_.emplace(column, static_cast<int>(offset + i));
      if (!inserted) it->second = -1;  // ambiguous
      star_names_.push_back(column);
    }
  }

  std::map<std::string, int> entries_;
  std::vector<std::string> star_names_;
};

/// Resolves every column reference in the expression tree through the
/// resolver (join-aware).
Status ResolveExprNames(Expr* expr, const NameResolver& resolver) {
  if (expr == nullptr) return Status::OK();
  switch (expr->kind) {
    case Expr::Kind::kColumnRef: {
      TELL_ASSIGN_OR_RETURN(expr->column_index,
                            resolver.Resolve(expr->column_name));
      return Status::OK();
    }
    case Expr::Kind::kBinary:
      TELL_RETURN_NOT_OK(ResolveExprNames(expr->left.get(), resolver));
      return ResolveExprNames(expr->right.get(), resolver);
    case Expr::Kind::kNot:
    case Expr::Kind::kIsNull:
      return ResolveExprNames(expr->child.get(), resolver);
    case Expr::Kind::kLiteral:
      return Status::OK();
  }
  return Status::OK();
}

/// Resolves every column reference in the expression tree to its positional
/// index in `schema`.
Status ResolveExpr(Expr* expr, const schema::Schema& schema) {
  if (expr == nullptr) return Status::OK();
  switch (expr->kind) {
    case Expr::Kind::kColumnRef: {
      TELL_ASSIGN_OR_RETURN(expr->column_index,
                            schema.ColumnIndex(expr->column_name));
      return Status::OK();
    }
    case Expr::Kind::kBinary:
      TELL_RETURN_NOT_OK(ResolveExpr(expr->left.get(), schema));
      return ResolveExpr(expr->right.get(), schema);
    case Expr::Kind::kNot:
    case Expr::Kind::kIsNull:
      return ResolveExpr(expr->child.get(), schema);
    case Expr::Kind::kLiteral:
      return Status::OK();
  }
  return Status::OK();
}

/// One extracted conjunct of the form <column op literal>.
struct Constraint {
  uint32_t column;
  BinaryOp op;
  schema::Value value;
};

/// Collects `col op literal` / `literal op col` conjuncts from the top-level
/// AND tree. ORs and anything fancier stay in the residual only.
void CollectConstraints(const Expr* expr, std::vector<Constraint>* out) {
  if (expr == nullptr) return;
  if (expr->kind != Expr::Kind::kBinary) return;
  if (expr->op == BinaryOp::kAnd) {
    CollectConstraints(expr->left.get(), out);
    CollectConstraints(expr->right.get(), out);
    return;
  }
  auto flip = [](BinaryOp op) {
    switch (op) {
      case BinaryOp::kLt:
        return BinaryOp::kGt;
      case BinaryOp::kLe:
        return BinaryOp::kGe;
      case BinaryOp::kGt:
        return BinaryOp::kLt;
      case BinaryOp::kGe:
        return BinaryOp::kLe;
      default:
        return op;
    }
  };
  const Expr* left = expr->left.get();
  const Expr* right = expr->right.get();
  if (left == nullptr || right == nullptr) return;
  BinaryOp op = expr->op;
  if (op != BinaryOp::kEq && op != BinaryOp::kLt && op != BinaryOp::kLe &&
      op != BinaryOp::kGt && op != BinaryOp::kGe) {
    return;
  }
  if (left->kind == Expr::Kind::kColumnRef &&
      right->kind == Expr::Kind::kLiteral) {
    out->push_back({left->column_index, op, right->literal});
  } else if (right->kind == Expr::Kind::kColumnRef &&
             left->kind == Expr::Kind::kLiteral) {
    out->push_back({right->column_index, flip(op), left->literal});
  }
}

/// Scores an index against the constraints and fills the candidate path.
/// Returns the score (0 = useless).
uint32_t MatchIndex(const schema::IndexDef& def, int index_position,
                    const std::vector<Constraint>& constraints,
                    AccessPath* path) {
  std::vector<schema::Value> eq_prefix;
  uint32_t matched = 0;
  size_t key_pos = 0;
  for (; key_pos < def.key_columns.size(); ++key_pos) {
    uint32_t column = def.key_columns[key_pos];
    const Constraint* eq = nullptr;
    for (const Constraint& c : constraints) {
      if (c.column == column && c.op == BinaryOp::kEq) {
        eq = &c;
        break;
      }
    }
    if (eq == nullptr) break;
    eq_prefix.push_back(eq->value);
    ++matched;
  }
  // Optional range on the first unmatched key column.
  std::optional<schema::Value> lo, hi;
  bool has_range = false;
  if (key_pos < def.key_columns.size()) {
    uint32_t column = def.key_columns[key_pos];
    for (const Constraint& c : constraints) {
      if (c.column != column) continue;
      if (c.op == BinaryOp::kGt || c.op == BinaryOp::kGe) {
        lo = c.value;
        has_range = true;
      } else if (c.op == BinaryOp::kLt || c.op == BinaryOp::kLe) {
        hi = c.value;
        has_range = true;
      }
    }
  }
  if (matched == 0 && !has_range) return 0;

  path->index = index_position;
  path->matched_columns = matched + (has_range ? 1 : 0);
  if (matched == def.key_columns.size() && def.unique) {
    path->kind = AccessPath::Kind::kIndexPoint;
    path->point_key = std::move(eq_prefix);
    return matched * 2 + 1;
  }
  // Build encoded range bounds. The residual re-checks exact semantics, so
  // inclusive bounds everywhere are fine (over-approximation).
  path->kind = AccessPath::Kind::kIndexRange;
  std::vector<schema::Value> lo_values = eq_prefix;
  std::vector<schema::Value> hi_values = eq_prefix;
  if (lo.has_value()) lo_values.push_back(*lo);
  if (hi.has_value()) hi_values.push_back(*hi);
  auto lo_key = schema::EncodeIndexKeyValues(lo_values);
  auto hi_key = schema::EncodeIndexKeyValues(hi_values);
  if (!lo_key.ok() || !hi_key.ok()) return 0;  // e.g. NULL in key
  path->range_lo = *lo_key;
  // Upper bound: extend the last constrained prefix so every key sharing it
  // is included (field encodings start with a tag byte < 0xFF, so appending
  // 0xFF is a strict upper bound for all extensions).
  path->range_hi = *hi_key;
  if (!path->range_hi.empty() || hi.has_value()) {
    path->range_hi.push_back('\xFF');
  } else {
    path->range_hi.clear();  // unbounded above
  }
  return matched * 2 + (has_range ? 1 : 0);
}

Status PickAccessPath(const tx::TableMeta* table, const Expr* where,
                      AccessPath* path) {
  std::vector<Constraint> constraints;
  CollectConstraints(where, &constraints);
  AccessPath best;
  uint32_t best_score = 0;
  AccessPath candidate;
  uint32_t score =
      MatchIndex(table->primary.def, -1, constraints, &candidate);
  if (score > best_score) {
    best = candidate;
    best_score = score;
  }
  for (size_t i = 0; i < table->secondaries.size(); ++i) {
    candidate = AccessPath{};
    score = MatchIndex(table->secondaries[i].def, static_cast<int>(i),
                       constraints, &candidate);
    if (score > best_score) {
      best = candidate;
      best_score = score;
    }
  }
  if (best_score == 0) {
    best = AccessPath{};
    best.kind = AccessPath::Kind::kFullScan;
    best.index = -1;
  }
  *path = std::move(best);
  return Status::OK();
}

}  // namespace

Result<Plan> PlanStatement(Statement statement, const tx::Catalog* catalog) {
  Plan plan;
  plan.statement = std::move(statement);
  Statement& stmt = plan.statement;

  std::string table_name;
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      table_name = stmt.select.table;
      break;
    case Statement::Kind::kInsert:
      table_name = stmt.insert.table;
      break;
    case Statement::Kind::kUpdate:
      table_name = stmt.update.table;
      break;
    case Statement::Kind::kDelete:
      table_name = stmt.delete_.table;
      break;
    case Statement::Kind::kCreateTable:
    case Statement::Kind::kCreateIndex:
      // DDL needs no table resolution here (handled by the database layer).
      return plan;
  }
  TELL_ASSIGN_OR_RETURN(plan.table, catalog->Find(table_name));
  const schema::Schema& schema = plan.table->schema;

  switch (stmt.kind) {
    case Statement::Kind::kSelect: {
      SelectStatement& select = stmt.select;
      if (!select.join_table.empty()) {
        TELL_ASSIGN_OR_RETURN(plan.join_table,
                              catalog->Find(select.join_table));
      }
      const std::string& left_name = select.table_alias.empty()
                                         ? plan.table->name
                                         : select.table_alias;
      std::string right_name;
      if (plan.join_table != nullptr) {
        right_name = select.join_alias.empty() ? plan.join_table->name
                                               : select.join_alias;
      }
      NameResolver resolver(plan.table, left_name, plan.join_table,
                            right_name);
      if (select.select_star) {
        plan.output_columns = resolver.StarColumnNames();
      } else {
        for (SelectItem& item : select.items) {
          TELL_RETURN_NOT_OK(ResolveExprNames(item.expr.get(), resolver));
          plan.output_columns.push_back(item.alias);
        }
      }
      TELL_RETURN_NOT_OK(ResolveExprNames(select.where.get(), resolver));
      if (plan.join_table != nullptr) {
        TELL_RETURN_NOT_OK(ResolveExprNames(select.join_left.get(), resolver));
        TELL_RETURN_NOT_OK(
            ResolveExprNames(select.join_right.get(), resolver));
        uint32_t a = select.join_left->column_index;
        uint32_t b = select.join_right->column_index;
        uint32_t left_width =
            static_cast<uint32_t>(plan.table->schema.num_columns());
        if ((a < left_width) == (b < left_width)) {
          return Status::InvalidArgument(
              "JOIN condition must relate one column of each table");
        }
        plan.join_left_column = std::min(a, b);
        plan.join_right_column = std::max(a, b) - left_width;
        // Joins materialize both sides: full scans.
        plan.access = AccessPath{};
        plan.access.kind = AccessPath::Kind::kFullScan;
      } else {
        TELL_RETURN_NOT_OK(
            PickAccessPath(plan.table, select.where.get(), &plan.access));
      }
      for (const std::string& column : select.group_by) {
        TELL_ASSIGN_OR_RETURN(uint32_t idx, resolver.Resolve(column));
        plan.group_by_columns.push_back(idx);
      }
      for (const OrderByItem& item : select.order_by) {
        Plan::ResolvedOrderBy resolved;
        resolved.descending = item.descending;
        if (select.select_star) {
          TELL_ASSIGN_OR_RETURN(resolved.index, resolver.Resolve(item.column));
          resolved.on_source = true;
        } else {
          bool found = false;
          for (size_t i = 0; i < plan.output_columns.size(); ++i) {
            if (plan.output_columns[i] == item.column) {
              resolved.index = static_cast<uint32_t>(i);
              found = true;
              break;
            }
          }
          if (!found) {
            return Status::InvalidArgument("ORDER BY column '" + item.column +
                                           "' not in output");
          }
        }
        plan.order_by.push_back(resolved);
      }
      // Lower eligible aggregate queries into a storage-side scan fragment
      // (DESIGN.md "Vectorized scans & aggregate pushdown"): full scan, no
      // join, and an aggregate and/or GROUP BY select list. ORDER BY and
      // LIMIT stay PN-side over the O(groups) merged result. The fragment
      // is computed unconditionally; the executor uses it only when
      // operator pushdown is enabled.
      bool has_aggregate = false;
      for (const SelectItem& item : select.items) {
        if (item.aggregate != AggregateFunc::kNone) has_aggregate = true;
      }
      if (plan.join_table == nullptr && !select.select_star &&
          plan.access.kind == AccessPath::Kind::kFullScan &&
          (has_aggregate || !select.group_by.empty())) {
        ScanFragment fragment;
        fragment.predicate = select.where.get();
        for (const SelectItem& item : select.items) {
          fragment.items.push_back(
              {item.aggregate, item.count_star, item.expr.get()});
        }
        fragment.group_by = plan.group_by_columns;
        fragment.columns_needed = CollectFragmentColumns(fragment);
        plan.fragment = std::move(fragment);
      }
      break;
    }
    case Statement::Kind::kInsert: {
      InsertStatement& insert = stmt.insert;
      for (const std::string& column : insert.columns) {
        TELL_RETURN_NOT_OK(schema.ColumnIndex(column).status());
      }
      for (auto& row : insert.rows) {
        size_t expected = insert.columns.empty() ? schema.num_columns()
                                                 : insert.columns.size();
        if (row.size() != expected) {
          return Status::InvalidArgument("INSERT value count mismatch");
        }
        for (ExprPtr& value : row) {
          TELL_RETURN_NOT_OK(ResolveExpr(value.get(), schema));
        }
      }
      break;
    }
    case Statement::Kind::kUpdate: {
      UpdateStatement& update = stmt.update;
      for (auto& [column, value] : update.assignments) {
        TELL_RETURN_NOT_OK(schema.ColumnIndex(column).status());
        TELL_RETURN_NOT_OK(ResolveExpr(value.get(), schema));
      }
      TELL_RETURN_NOT_OK(ResolveExpr(update.where.get(), schema));
      TELL_RETURN_NOT_OK(
          PickAccessPath(plan.table, update.where.get(), &plan.access));
      break;
    }
    case Statement::Kind::kDelete: {
      TELL_RETURN_NOT_OK(ResolveExpr(stmt.delete_.where.get(), schema));
      TELL_RETURN_NOT_OK(
          PickAccessPath(plan.table, stmt.delete_.where.get(), &plan.access));
      break;
    }
    default:
      break;
  }
  return plan;
}

}  // namespace tell::sql
