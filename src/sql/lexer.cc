#include "sql/lexer.h"

#include <array>
#include <cctype>
#include <algorithm>

namespace tell::sql {

namespace {

constexpr std::array<std::string_view, 34> kKeywords = {
    "SELECT", "FROM",   "WHERE",   "AND",    "OR",     "NOT",   "INSERT",
    "INTO",   "VALUES", "UPDATE",  "SET",    "DELETE", "CREATE", "TABLE",
    "INDEX",  "UNIQUE", "PRIMARY", "KEY",    "ON",     "ORDER", "BY",
    "ASC",    "DESC",   "LIMIT",   "GROUP",  "INT",    "DOUBLE", "VARCHAR",
    "IS",     "NULL",   "AS",     "JOIN",   "INNER",  "BETWEEN",
};

bool IsKeyword(std::string_view upper) {
  return std::find(kKeywords.begin(), kKeywords.end(), upper) !=
         kKeywords.end();
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '_')) {
        ++i;
      }
      std::string word(sql.substr(start, i - start));
      std::string upper = word;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
      if (IsKeyword(upper)) {
        tokens.push_back({TokenType::kKeyword, upper, start});
      } else {
        for (char& ch : word) ch = static_cast<char>(std::tolower(ch));
        tokens.push_back({TokenType::kIdentifier, word, start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < sql.size() &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])) &&
         (tokens.empty() || tokens.back().type == TokenType::kSymbol ||
          tokens.back().type == TokenType::kKeyword))) {
      bool is_float = false;
      ++i;  // first digit or '-'
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '.')) {
        if (sql[i] == '.') is_float = true;
        ++i;
      }
      tokens.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                        std::string(sql.substr(start, i - start)), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {  // '' escape
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal");
      }
      tokens.push_back({TokenType::kString, std::move(text), start});
      continue;
    }
    // Two-character operators first.
    if (i + 1 < sql.size()) {
      std::string two(sql.substr(i, 2));
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tokens.push_back(
            {TokenType::kSymbol, two == "!=" ? "<>" : two, start});
        i += 2;
        continue;
      }
    }
    static constexpr std::string_view kSingles = "(),*=<>+-/.;";
    if (kSingles.find(c) != std::string_view::npos) {
      if (c == ';') {
        ++i;
        continue;  // statement terminator is optional noise
      }
      tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at position " +
                                   std::to_string(i));
  }
  tokens.push_back({TokenType::kEnd, "", sql.size()});
  return tokens;
}

}  // namespace tell::sql
