#ifndef TELL_SQL_AST_H_
#define TELL_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "schema/schema.h"
#include "schema/tuple.h"

namespace tell::sql {

// ---------------------------------------------------------------------------
// Expressions

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { kLiteral, kColumnRef, kBinary, kNot, kIsNull };

  Kind kind;
  // kLiteral
  schema::Value literal;
  // kColumnRef
  std::string column_name;
  uint32_t column_index = UINT32_MAX;  // resolved by the planner
  // kBinary
  BinaryOp op = BinaryOp::kEq;
  ExprPtr left;
  ExprPtr right;
  // kNot / kIsNull
  ExprPtr child;
  bool negated = false;  // IS NOT NULL

  static ExprPtr Literal(schema::Value v) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kLiteral;
    e->literal = std::move(v);
    return e;
  }
  static ExprPtr Column(std::string name) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kColumnRef;
    e->column_name = std::move(name);
    return e;
  }
  static ExprPtr Binary(BinaryOp op, ExprPtr left, ExprPtr right) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kBinary;
    e->op = op;
    e->left = std::move(left);
    e->right = std::move(right);
    return e;
  }
  static ExprPtr Not(ExprPtr child) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kNot;
    e->child = std::move(child);
    return e;
  }
};

// ---------------------------------------------------------------------------
// Statements

enum class AggregateFunc { kNone, kCount, kSum, kAvg, kMin, kMax };

/// One item in a SELECT list: a plain expression or an aggregate over one.
struct SelectItem {
  AggregateFunc aggregate = AggregateFunc::kNone;
  bool count_star = false;
  ExprPtr expr;       // null for COUNT(*)
  std::string alias;  // display name
};

struct OrderByItem {
  std::string column;
  bool descending = false;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  bool select_star = false;
  std::string table;
  std::string table_alias;  // optional "FROM t [AS] a"
  /// INNER JOIN support (single join): `SELECT ... FROM t1 JOIN t2 ON
  /// t1.a = t2.b`. Empty = no join. Executed as a hash join over the
  /// equality condition; every processing node can join any tables — the
  /// shared-data architecture has no cross-partition restriction (§3's
  /// contrast with Azure SQL Database).
  std::string join_table;
  std::string join_alias;  // optional alias for the joined table
  ExprPtr join_left;   // column ref into the left table
  ExprPtr join_right;  // column ref into the right table
  ExprPtr where;  // may be null
  std::vector<std::string> group_by;
  std::vector<OrderByItem> order_by;
  std::optional<uint64_t> limit;
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;  // empty = positional
  std::vector<std::vector<ExprPtr>> rows;
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStatement {
  std::string table;
  ExprPtr where;
};

struct CreateTableStatement {
  std::string table;
  std::vector<schema::Column> columns;
  std::vector<std::string> primary_key;
};

struct CreateIndexStatement {
  std::string index_name;
  std::string table;
  std::vector<std::string> columns;
  bool unique = false;
};

struct Statement {
  enum class Kind {
    kSelect,
    kInsert,
    kUpdate,
    kDelete,
    kCreateTable,
    kCreateIndex,
  };
  Kind kind;
  SelectStatement select;
  InsertStatement insert;
  UpdateStatement update;
  DeleteStatement delete_;
  CreateTableStatement create_table;
  CreateIndexStatement create_index;
};

}  // namespace tell::sql

#endif  // TELL_SQL_AST_H_
