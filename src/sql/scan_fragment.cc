#include "sql/scan_fragment.h"

#include <algorithm>
#include <variant>

#include "common/serde.h"
#include "sql/executor.h"

namespace tell::sql {

using schema::Value;

void AggFold::Add(const Value& v) {
  if (schema::ValueIsNull(v)) return;
  double d = std::holds_alternative<int64_t>(v)
                 ? static_cast<double>(std::get<int64_t>(v))
                 : (std::holds_alternative<double>(v) ? std::get<double>(v)
                                                      : 0.0);
  sum += d;
  if (count == 0 || schema::CompareValues(v, min_v) < 0) min_v = v;
  if (count == 0 || schema::CompareValues(v, max_v) > 0) max_v = v;
  ++count;
}

void AggFold::MergeFrom(const AggFold& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  sum += other.sum;
  // Strict comparisons keep the earlier partial's value on ties, matching
  // the sequential fold's first-seen tie-break.
  if (schema::CompareValues(other.min_v, min_v) < 0) min_v = other.min_v;
  if (schema::CompareValues(other.max_v, max_v) > 0) max_v = other.max_v;
  count += other.count;
}

Value AggFold::Final(AggregateFunc func) const {
  switch (func) {
    case AggregateFunc::kCount:
      return Value(count);
    case AggregateFunc::kSum:
      return count == 0 ? Value(std::monostate{}) : Value(sum);
    case AggregateFunc::kAvg:
      return count == 0 ? Value(std::monostate{})
                        : Value(sum / static_cast<double>(count));
    case AggregateFunc::kMin:
      return count == 0 ? Value(std::monostate{}) : min_v;
    case AggregateFunc::kMax:
      return count == 0 ? Value(std::monostate{}) : max_v;
    default:
      return Value(std::monostate{});
  }
}

void AppendGroupKey(const Value& value, std::string* key) {
  *key += schema::ValueToString(value);
  key->push_back('\x1F');
}

namespace {

/// Wire encoding of one Value: a type tag plus the payload. Used for both
/// the descriptor (literal operands) and the partial states; the sizes are
/// what the network model charges.
void SerializeValue(const Value& value, BufferWriter* out) {
  if (std::holds_alternative<std::monostate>(value)) {
    out->PutU8(0);
    return;
  }
  if (const int64_t* i = std::get_if<int64_t>(&value)) {
    out->PutU8(1);
    out->PutI64(*i);
    return;
  }
  if (const double* d = std::get_if<double>(&value)) {
    out->PutU8(2);
    out->PutDouble(*d);
    return;
  }
  out->PutU8(3);
  out->PutString(std::get<std::string>(value));
}

/// Recursive expression encoding: kind byte, then the node's operands.
void SerializeExpr(const Expr* expr, BufferWriter* out) {
  out->PutU8(static_cast<uint8_t>(expr->kind));
  switch (expr->kind) {
    case Expr::Kind::kLiteral:
      SerializeValue(expr->literal, out);
      return;
    case Expr::Kind::kColumnRef:
      out->PutU32(expr->column_index);
      return;
    case Expr::Kind::kIsNull:
      out->PutU8(expr->negated ? 1 : 0);
      SerializeExpr(expr->child.get(), out);
      return;
    case Expr::Kind::kNot:
      SerializeExpr(expr->child.get(), out);
      return;
    case Expr::Kind::kBinary:
      out->PutU8(static_cast<uint8_t>(expr->op));
      SerializeExpr(expr->left.get(), out);
      SerializeExpr(expr->right.get(), out);
      return;
  }
}

void CollectColumns(const Expr* expr, std::vector<uint32_t>* columns) {
  if (expr == nullptr) return;
  switch (expr->kind) {
    case Expr::Kind::kColumnRef:
      columns->push_back(expr->column_index);
      return;
    case Expr::Kind::kIsNull:
    case Expr::Kind::kNot:
      CollectColumns(expr->child.get(), columns);
      return;
    case Expr::Kind::kBinary:
      CollectColumns(expr->left.get(), columns);
      CollectColumns(expr->right.get(), columns);
      return;
    case Expr::Kind::kLiteral:
      return;
  }
}

}  // namespace

std::vector<uint32_t> CollectFragmentColumns(const ScanFragment& fragment) {
  std::vector<uint32_t> columns;
  CollectColumns(fragment.predicate, &columns);
  for (const ScanFragment::AggSpec& item : fragment.items) {
    CollectColumns(item.expr, &columns);
  }
  columns.insert(columns.end(), fragment.group_by.begin(),
                 fragment.group_by.end());
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  return columns;
}

std::string ScanFragment::SerializeDescriptor() const {
  BufferWriter out;
  out.PutU8(predicate != nullptr ? 1 : 0);
  if (predicate != nullptr) SerializeExpr(predicate, &out);
  out.PutU32(static_cast<uint32_t>(items.size()));
  for (const AggSpec& item : items) {
    out.PutU8(static_cast<uint8_t>(item.func));
    out.PutU8(item.count_star ? 1 : 0);
    if (item.expr != nullptr) SerializeExpr(item.expr, &out);
  }
  out.PutU32(static_cast<uint32_t>(group_by.size()));
  for (uint32_t column : group_by) out.PutU32(column);
  out.PutU32(static_cast<uint32_t>(columns_needed.size()));
  for (uint32_t column : columns_needed) out.PutU32(column);
  return out.Release();
}

bool AggregateFragmentSink::Absorb(std::string_view key,
                                   std::string_view value) {
  if (!status_.ok()) return false;
  if (key.size() != 8) return true;  // not a rid-keyed data cell
  payload_.clear();
  if (!visible_(value, &payload_)) return true;
  auto tuple = schema::Tuple::Deserialize(*schema_, payload_);
  if (!tuple.ok()) {
    status_ = tuple.status();
    return false;
  }
  if (fragment_->predicate != nullptr) {
    // Same convention as the row-shipping pushdown path: an erroring
    // predicate rejects the row instead of failing the scan.
    auto pass = EvalExpr(fragment_->predicate, *tuple);
    if (!pass.ok() || !ValueIsTruthy(*pass)) return true;
  }
  baseline_bytes_ += key.size() + payload_.size() + 16;

  std::string group_key;
  for (uint32_t column : fragment_->group_by) {
    AppendGroupKey(tuple->at(column), &group_key);
  }
  auto [it, inserted] = groups_.try_emplace(std::move(group_key));
  GroupState& group = it->second;
  if (inserted) {
    // Cells arrive in rid order within a partition, so the first member
    // seen is the partition's lowest-rid member of this group.
    group.first_rid = DecodeOrderedU64(key);
    group.first_values.resize(fragment_->items.size());
    group.folds.resize(fragment_->items.size());
    for (size_t i = 0; i < fragment_->items.size(); ++i) {
      const ScanFragment::AggSpec& item = fragment_->items[i];
      if (item.func != AggregateFunc::kNone) continue;
      auto v = EvalExpr(item.expr, *tuple);
      if (!v.ok()) {
        status_ = v.status();
        return false;
      }
      group.first_values[i] = std::move(*v);
    }
  }
  ++group.count_star;
  for (size_t i = 0; i < fragment_->items.size(); ++i) {
    const ScanFragment::AggSpec& item = fragment_->items[i];
    if (item.func == AggregateFunc::kNone || item.count_star) continue;
    auto v = EvalExpr(item.expr, *tuple);
    if (!v.ok()) {
      status_ = v.status();
      return false;
    }
    group.folds[i].Add(*v);
  }
  return true;
}

std::string AggregateFragmentSink::Finish() {
  BufferWriter out;
  out.PutU32(static_cast<uint32_t>(groups_.size()));
  for (const auto& [key, group] : groups_) {
    out.PutString(key);
    out.PutU64(group.first_rid);
    out.PutI64(group.count_star);
    for (size_t i = 0; i < fragment_->items.size(); ++i) {
      const ScanFragment::AggSpec& item = fragment_->items[i];
      if (item.func == AggregateFunc::kNone) {
        SerializeValue(group.first_values[i], &out);
      } else if (item.count_star) {
        // COUNT(*) rides on the group's count_star; no extra bytes.
      } else {
        const AggFold& fold = group.folds[i];
        out.PutI64(fold.count);
        out.PutDouble(fold.sum);
        SerializeValue(fold.min_v, &out);
        SerializeValue(fold.max_v, &out);
      }
    }
  }
  return out.Release();
}

void MergeGroupStates(
    const std::map<std::string, AggregateFragmentSink::GroupState>& from,
    std::map<std::string, AggregateFragmentSink::GroupState>* into) {
  for (const auto& [key, group] : from) {
    auto [it, inserted] = into->try_emplace(key, group);
    if (inserted) continue;
    AggregateFragmentSink::GroupState& merged = it->second;
    if (group.first_rid < merged.first_rid) {
      merged.first_rid = group.first_rid;
      merged.first_values = group.first_values;
    }
    merged.count_star += group.count_star;
    for (size_t i = 0; i < merged.folds.size() && i < group.folds.size();
         ++i) {
      merged.folds[i].MergeFrom(group.folds[i]);
    }
  }
}

}  // namespace tell::sql
