#include "sql/parser.h"

#include <cstdlib>

namespace tell::sql {

namespace {

/// Token-stream cursor with the usual helpers.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement();

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool CheckKeyword(std::string_view kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool MatchKeyword(std::string_view kw) {
    if (!CheckKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) {
      return Status::InvalidArgument("expected " + std::string(kw) +
                                     " near '" + Peek().text + "'");
    }
    return Status::OK();
  }
  bool CheckSymbol(std::string_view sym) const {
    return Peek().type == TokenType::kSymbol && Peek().text == sym;
  }
  bool MatchSymbol(std::string_view sym) {
    if (!CheckSymbol(sym)) return false;
    ++pos_;
    return true;
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!MatchSymbol(sym)) {
      return Status::InvalidArgument("expected '" + std::string(sym) +
                                     "' near '" + Peek().text + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected identifier near '" +
                                     Peek().text + "'");
    }
    return Advance().text;
  }

  Result<SelectStatement> ParseSelect();
  Result<InsertStatement> ParseInsert();
  Result<UpdateStatement> ParseUpdate();
  Result<DeleteStatement> ParseDelete();
  Result<Statement> ParseCreate();

  Result<SelectItem> ParseSelectItem();
  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<ExprPtr> Parser::ParseOr() {
  TELL_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (MatchKeyword("OR")) {
    TELL_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = Expr::Binary(BinaryOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  TELL_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (MatchKeyword("AND")) {
    TELL_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = Expr::Binary(BinaryOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    TELL_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
    return Expr::Not(std::move(child));
  }
  return ParseComparison();
}

/// Deep copy of a column-ref / literal / arithmetic expression (needed to
/// desugar BETWEEN, whose operand appears twice).
ExprPtr CloneExpr(const Expr* expr) {
  if (expr == nullptr) return nullptr;
  auto copy = std::make_unique<Expr>();
  copy->kind = expr->kind;
  copy->literal = expr->literal;
  copy->column_name = expr->column_name;
  copy->column_index = expr->column_index;
  copy->op = expr->op;
  copy->negated = expr->negated;
  if (expr->left) copy->left = CloneExpr(expr->left.get());
  if (expr->right) copy->right = CloneExpr(expr->right.get());
  if (expr->child) copy->child = CloneExpr(expr->child.get());
  return copy;
}

Result<ExprPtr> Parser::ParseComparison() {
  TELL_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  if (MatchKeyword("BETWEEN")) {
    // x BETWEEN a AND b  desugars to  x >= a AND x <= b.
    TELL_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    TELL_RETURN_NOT_OK(ExpectKeyword("AND"));
    TELL_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    ExprPtr left_copy = CloneExpr(left.get());
    return Expr::Binary(
        BinaryOp::kAnd,
        Expr::Binary(BinaryOp::kGe, std::move(left), std::move(lo)),
        Expr::Binary(BinaryOp::kLe, std::move(left_copy), std::move(hi)));
  }
  if (MatchKeyword("IS")) {
    bool negated = MatchKeyword("NOT");
    TELL_RETURN_NOT_OK(ExpectKeyword("NULL"));
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kIsNull;
    e->child = std::move(left);
    e->negated = negated;
    return ExprPtr(std::move(e));
  }
  struct OpMap {
    std::string_view symbol;
    BinaryOp op;
  };
  static constexpr OpMap kOps[] = {
      {"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
      {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
  };
  for (const OpMap& entry : kOps) {
    if (MatchSymbol(entry.symbol)) {
      TELL_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return Expr::Binary(entry.op, std::move(left), std::move(right));
    }
  }
  return left;
}

Result<ExprPtr> Parser::ParseAdditive() {
  TELL_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (true) {
    if (MatchSymbol("+")) {
      TELL_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Expr::Binary(BinaryOp::kAdd, std::move(left), std::move(right));
    } else if (MatchSymbol("-")) {
      TELL_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Expr::Binary(BinaryOp::kSub, std::move(left), std::move(right));
    } else {
      return left;
    }
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  TELL_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
  while (true) {
    if (MatchSymbol("*")) {
      TELL_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
      left = Expr::Binary(BinaryOp::kMul, std::move(left), std::move(right));
    } else if (MatchSymbol("/")) {
      TELL_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
      left = Expr::Binary(BinaryOp::kDiv, std::move(left), std::move(right));
    } else {
      return left;
    }
  }
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& token = Peek();
  switch (token.type) {
    case TokenType::kInteger: {
      Advance();
      return Expr::Literal(
          schema::Value(static_cast<int64_t>(std::strtoll(token.text.c_str(),
                                                          nullptr, 10))));
    }
    case TokenType::kFloat: {
      Advance();
      return Expr::Literal(
          schema::Value(std::strtod(token.text.c_str(), nullptr)));
    }
    case TokenType::kString: {
      Advance();
      return Expr::Literal(schema::Value(token.text));
    }
    case TokenType::kIdentifier: {
      Advance();
      // Qualified reference: table.column.
      if (MatchSymbol(".")) {
        TELL_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
        return Expr::Column(token.text + "." + column);
      }
      return Expr::Column(token.text);
    }
    case TokenType::kKeyword:
      if (token.text == "NULL") {
        Advance();
        return Expr::Literal(schema::Value(std::monostate{}));
      }
      break;
    case TokenType::kSymbol:
      if (token.text == "(") {
        Advance();
        TELL_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        TELL_RETURN_NOT_OK(ExpectSymbol(")"));
        return inner;
      }
      if (token.text == "-") {
        Advance();
        TELL_ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary());
        return Expr::Binary(BinaryOp::kSub,
                            Expr::Literal(schema::Value(int64_t{0})),
                            std::move(inner));
      }
      break;
    default:
      break;
  }
  return Status::InvalidArgument("unexpected token '" + token.text +
                                 "' in expression");
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  struct AggMap {
    std::string_view name;
    AggregateFunc func;
  };
  static constexpr AggMap kAggs[] = {
      {"count", AggregateFunc::kCount}, {"sum", AggregateFunc::kSum},
      {"avg", AggregateFunc::kAvg},     {"min", AggregateFunc::kMin},
      {"max", AggregateFunc::kMax},
  };
  if (Peek().type == TokenType::kIdentifier) {
    for (const AggMap& agg : kAggs) {
      if (Peek().text == agg.name && tokens_[pos_ + 1].text == "(") {
        Advance();  // function name
        Advance();  // (
        item.aggregate = agg.func;
        if (agg.func == AggregateFunc::kCount && MatchSymbol("*")) {
          item.count_star = true;
        } else {
          TELL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        }
        TELL_RETURN_NOT_OK(ExpectSymbol(")"));
        item.alias = std::string(agg.name) + (item.count_star ? "(*)" : "()");
        if (MatchKeyword("AS")) {
          TELL_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        }
        return item;
      }
    }
  }
  TELL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  item.alias = item.expr->kind == Expr::Kind::kColumnRef
                   ? item.expr->column_name
                   : "expr";
  if (MatchKeyword("AS")) {
    TELL_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
  }
  return item;
}

Result<SelectStatement> Parser::ParseSelect() {
  SelectStatement stmt;
  if (MatchSymbol("*")) {
    stmt.select_star = true;
  } else {
    do {
      TELL_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt.items.push_back(std::move(item));
    } while (MatchSymbol(","));
  }
  TELL_RETURN_NOT_OK(ExpectKeyword("FROM"));
  TELL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  // Optional table alias: FROM t [AS] a.
  if (MatchKeyword("AS")) {
    TELL_ASSIGN_OR_RETURN(stmt.table_alias, ExpectIdentifier());
  } else if (Peek().type == TokenType::kIdentifier) {
    stmt.table_alias = Advance().text;
  }
  if (MatchKeyword("INNER") || CheckKeyword("JOIN")) {
    TELL_RETURN_NOT_OK(ExpectKeyword("JOIN"));
    TELL_ASSIGN_OR_RETURN(stmt.join_table, ExpectIdentifier());
    if (MatchKeyword("AS")) {
      TELL_ASSIGN_OR_RETURN(stmt.join_alias, ExpectIdentifier());
    } else if (Peek().type == TokenType::kIdentifier) {
      stmt.join_alias = Advance().text;
    }
    TELL_RETURN_NOT_OK(ExpectKeyword("ON"));
    TELL_ASSIGN_OR_RETURN(ExprPtr condition, ParseExpr());
    if (condition->kind != Expr::Kind::kBinary ||
        condition->op != BinaryOp::kEq ||
        condition->left->kind != Expr::Kind::kColumnRef ||
        condition->right->kind != Expr::Kind::kColumnRef) {
      return Status::InvalidArgument(
          "JOIN ... ON requires an equality of two columns");
    }
    stmt.join_left = std::move(condition->left);
    stmt.join_right = std::move(condition->right);
  }
  if (MatchKeyword("WHERE")) {
    TELL_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  if (MatchKeyword("GROUP")) {
    TELL_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      TELL_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      stmt.group_by.push_back(std::move(col));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("ORDER")) {
    TELL_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      OrderByItem item;
      TELL_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
      if (MatchKeyword("DESC")) {
        item.descending = true;
      } else {
        MatchKeyword("ASC");
      }
      stmt.order_by.push_back(std::move(item));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("LIMIT")) {
    if (Peek().type != TokenType::kInteger) {
      return Status::InvalidArgument("LIMIT expects an integer");
    }
    stmt.limit = static_cast<uint64_t>(
        std::strtoull(Advance().text.c_str(), nullptr, 10));
  }
  return stmt;
}

Result<InsertStatement> Parser::ParseInsert() {
  InsertStatement stmt;
  TELL_RETURN_NOT_OK(ExpectKeyword("INTO"));
  TELL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  if (MatchSymbol("(")) {
    do {
      TELL_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      stmt.columns.push_back(std::move(col));
    } while (MatchSymbol(","));
    TELL_RETURN_NOT_OK(ExpectSymbol(")"));
  }
  TELL_RETURN_NOT_OK(ExpectKeyword("VALUES"));
  do {
    TELL_RETURN_NOT_OK(ExpectSymbol("("));
    std::vector<ExprPtr> row;
    do {
      TELL_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      row.push_back(std::move(value));
    } while (MatchSymbol(","));
    TELL_RETURN_NOT_OK(ExpectSymbol(")"));
    stmt.rows.push_back(std::move(row));
  } while (MatchSymbol(","));
  return stmt;
}

Result<UpdateStatement> Parser::ParseUpdate() {
  UpdateStatement stmt;
  TELL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  TELL_RETURN_NOT_OK(ExpectKeyword("SET"));
  do {
    TELL_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    TELL_RETURN_NOT_OK(ExpectSymbol("="));
    TELL_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
    stmt.assignments.emplace_back(std::move(col), std::move(value));
  } while (MatchSymbol(","));
  if (MatchKeyword("WHERE")) {
    TELL_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

Result<DeleteStatement> Parser::ParseDelete() {
  DeleteStatement stmt;
  TELL_RETURN_NOT_OK(ExpectKeyword("FROM"));
  TELL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
  if (MatchKeyword("WHERE")) {
    TELL_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

Result<Statement> Parser::ParseCreate() {
  Statement out;
  bool unique = MatchKeyword("UNIQUE");
  if (MatchKeyword("TABLE")) {
    if (unique) return Status::InvalidArgument("UNIQUE TABLE is not a thing");
    out.kind = Statement::Kind::kCreateTable;
    CreateTableStatement& stmt = out.create_table;
    TELL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    TELL_RETURN_NOT_OK(ExpectSymbol("("));
    do {
      if (MatchKeyword("PRIMARY")) {
        TELL_RETURN_NOT_OK(ExpectKeyword("KEY"));
        TELL_RETURN_NOT_OK(ExpectSymbol("("));
        do {
          TELL_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          stmt.primary_key.push_back(std::move(col));
        } while (MatchSymbol(","));
        TELL_RETURN_NOT_OK(ExpectSymbol(")"));
        continue;
      }
      schema::Column column;
      TELL_ASSIGN_OR_RETURN(column.name, ExpectIdentifier());
      if (MatchKeyword("INT")) {
        column.type = schema::ColumnType::kInt64;
      } else if (MatchKeyword("DOUBLE")) {
        column.type = schema::ColumnType::kDouble;
      } else if (MatchKeyword("VARCHAR")) {
        column.type = schema::ColumnType::kString;
        if (MatchSymbol("(")) {  // length is accepted and ignored
          if (Peek().type == TokenType::kInteger) Advance();
          TELL_RETURN_NOT_OK(ExpectSymbol(")"));
        }
      } else {
        return Status::InvalidArgument("unknown column type near '" +
                                       Peek().text + "'");
      }
      stmt.columns.push_back(std::move(column));
    } while (MatchSymbol(","));
    TELL_RETURN_NOT_OK(ExpectSymbol(")"));
    if (stmt.primary_key.empty()) {
      return Status::InvalidArgument("CREATE TABLE requires a PRIMARY KEY");
    }
    return out;
  }
  if (MatchKeyword("INDEX")) {
    out.kind = Statement::Kind::kCreateIndex;
    CreateIndexStatement& stmt = out.create_index;
    stmt.unique = unique;
    TELL_ASSIGN_OR_RETURN(stmt.index_name, ExpectIdentifier());
    TELL_RETURN_NOT_OK(ExpectKeyword("ON"));
    TELL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    TELL_RETURN_NOT_OK(ExpectSymbol("("));
    do {
      TELL_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      stmt.columns.push_back(std::move(col));
    } while (MatchSymbol(","));
    TELL_RETURN_NOT_OK(ExpectSymbol(")"));
    return out;
  }
  return Status::InvalidArgument("expected TABLE or INDEX after CREATE");
}

Result<Statement> Parser::ParseStatement() {
  Statement out;
  if (MatchKeyword("SELECT")) {
    out.kind = Statement::Kind::kSelect;
    TELL_ASSIGN_OR_RETURN(out.select, ParseSelect());
  } else if (MatchKeyword("INSERT")) {
    out.kind = Statement::Kind::kInsert;
    TELL_ASSIGN_OR_RETURN(out.insert, ParseInsert());
  } else if (MatchKeyword("UPDATE")) {
    out.kind = Statement::Kind::kUpdate;
    TELL_ASSIGN_OR_RETURN(out.update, ParseUpdate());
  } else if (MatchKeyword("DELETE")) {
    out.kind = Statement::Kind::kDelete;
    TELL_ASSIGN_OR_RETURN(out.delete_, ParseDelete());
  } else if (MatchKeyword("CREATE")) {
    TELL_ASSIGN_OR_RETURN(out, ParseCreate());
  } else {
    return Status::InvalidArgument("expected a statement, got '" +
                                   Peek().text + "'");
  }
  if (Peek().type != TokenType::kEnd) {
    return Status::InvalidArgument("trailing input near '" + Peek().text +
                                   "'");
  }
  return out;
}

}  // namespace

Result<Statement> Parse(std::string_view sql) {
  TELL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace tell::sql
