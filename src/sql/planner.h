#ifndef TELL_SQL_PLANNER_H_
#define TELL_SQL_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "schema/schema.h"
#include "sql/ast.h"
#include "sql/scan_fragment.h"
#include "tx/catalog.h"

namespace tell::sql {

/// How the executor reaches the rows of one table.
struct AccessPath {
  enum class Kind {
    /// Scan the whole primary index ("data is shipped to the query").
    kFullScan,
    /// Exact match on the full key of a unique index.
    kIndexPoint,
    /// Range / prefix scan over one index.
    kIndexRange,
  };
  Kind kind = Kind::kFullScan;
  /// -1 = primary, otherwise position in TableMeta::secondaries.
  int index = -1;
  /// kIndexPoint: the full key values.
  std::vector<schema::Value> point_key;
  /// kIndexRange: encoded byte bounds [lo, hi); empty = unbounded.
  std::string range_lo;
  std::string range_hi;
  /// Number of key columns usefully constrained (diagnostics/tests).
  uint32_t matched_columns = 0;
};

/// A planned statement: the statement with all column references resolved to
/// positional indices, plus the chosen access path for its table.
///
/// For joins, column references resolve into the CONCATENATED tuple
/// (left columns first, right columns appended), and the executor performs
/// a hash join on the resolved equality columns.
struct Plan {
  Statement statement;
  const tx::TableMeta* table = nullptr;
  AccessPath access;
  /// Resolved select-list output names (queries only).
  std::vector<std::string> output_columns;

  /// Join (SELECT only): right-side table, and the equality columns —
  /// join_left_column indexes the left tuple, join_right_column the right.
  const tx::TableMeta* join_table = nullptr;
  uint32_t join_left_column = 0;
  uint32_t join_right_column = 0;

  /// GROUP BY columns resolved into the source (possibly concatenated)
  /// tuple.
  std::vector<uint32_t> group_by_columns;
  /// ORDER BY resolved: `on_source` orders by a source-tuple column
  /// (select-star queries), otherwise by an output-column position.
  struct ResolvedOrderBy {
    uint32_t index = 0;
    bool descending = false;
    bool on_source = false;
  };
  std::vector<ResolvedOrderBy> order_by;

  /// Storage-side lowering of an eligible aggregate query (full scan, no
  /// join, aggregates and/or GROUP BY): the serializable fragment the
  /// executor fans out to every partition when operator pushdown is on.
  /// Expr pointers reach into `statement` (heap nodes, stable across Plan
  /// moves). Ignored by the executor when pushdown is off.
  std::optional<ScanFragment> fragment;
};

/// Resolves names against the catalog and picks an index:
/// the index with the longest equality prefix over the WHERE conjuncts wins,
/// with a trailing range on the next key column as a bonus; ties prefer the
/// primary index. The full WHERE is kept as a residual filter, so the access
/// path only needs to over-approximate.
Result<Plan> PlanStatement(Statement statement, const tx::Catalog* catalog);

}  // namespace tell::sql

#endif  // TELL_SQL_PLANNER_H_
