#ifndef TELL_SQL_PARSER_H_
#define TELL_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace tell::sql {

/// Recursive-descent parser for the supported SQL subset:
///
///   SELECT <*|expr[,...]> FROM t [WHERE expr] [GROUP BY cols]
///       [ORDER BY col [ASC|DESC][,...]] [LIMIT n]
///   INSERT INTO t [(cols)] VALUES (expr,...)[,(...)]
///   UPDATE t SET col = expr[,...] [WHERE expr]
///   DELETE FROM t [WHERE expr]
///   CREATE TABLE t (col TYPE[,...], PRIMARY KEY (cols))
///   CREATE [UNIQUE] INDEX name ON t (cols)
///
/// Expressions: comparisons (= <> < <= > >=), AND/OR/NOT, IS [NOT] NULL,
/// arithmetic (+ - * /), column refs, integer/float/string literals,
/// aggregates COUNT(*|col), SUM, AVG, MIN, MAX in the select list.
Result<Statement> Parse(std::string_view sql);

}  // namespace tell::sql

#endif  // TELL_SQL_PARSER_H_
