#ifndef TELL_SQL_EXECUTOR_H_
#define TELL_SQL_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/planner.h"
#include "tx/transaction.h"

namespace tell::sql {

/// Result of a statement: rows for queries, affected-row count for DML.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<schema::Tuple> rows;
  uint64_t affected_rows = 0;

  std::string ToString() const;  // simple ASCII table (examples / debugging)
};

/// Evaluates a resolved expression against a tuple. Comparison and logic
/// results are int64 0/1; NULL propagates through comparisons and
/// arithmetic (three-valued logic reduced to "NULL is falsy").
Result<schema::Value> EvalExpr(const Expr* expr, const schema::Tuple& tuple);

/// True if `value` counts as true in a WHERE context.
bool ValueIsTruthy(const schema::Value& value);

/// Executes planned statements inside a transaction, using the iterator
/// model over the access paths chosen by the planner ("data is shipped to
/// the query", paper §2.1). Stateless — one instance per PN is fine.
class Executor {
 public:
  /// `pushdown` enables §5.2 operator push-down: full-table scans with a
  /// WHERE clause evaluate the predicate on the storage nodes.
  explicit Executor(bool pushdown = false) : pushdown_(pushdown) {}

  /// Runs a DML/query plan. DDL plans are rejected (the database layer owns
  /// DDL).
  Result<ResultSet> Execute(tx::Transaction* txn, tx::TableRegistry* registry,
                            const Plan& plan);

 private:
  /// `limit` (0 = none) stops storage-side scans early when the statement's
  /// LIMIT can be applied before any residual executor work.
  Result<std::vector<std::pair<uint64_t, schema::Tuple>>> FetchRows(
      tx::Transaction* txn, tx::TableHandle* handle, const Plan& plan,
      const Expr* where, size_t limit = 0);

  Result<ResultSet> ExecuteSelect(tx::Transaction* txn,
                                  tx::TableHandle* handle,
                                  tx::TableRegistry* registry,
                                  const Plan& plan);

  /// Vectorized path for an eligible aggregate query: fans the plan's
  /// ScanFragment out to every partition and merges the partial group
  /// states — the response is O(groups), not O(rows).
  Result<ResultSet> ExecuteFragmentSelect(tx::Transaction* txn,
                                          tx::TableHandle* handle,
                                          const Plan& plan);

  /// Materializes both sides and hash-joins on the planned equality.
  Result<std::vector<std::pair<uint64_t, schema::Tuple>>> HashJoin(
      tx::Transaction* txn, tx::TableHandle* left, tx::TableHandle* right,
      const Plan& plan);
  Result<ResultSet> ExecuteInsert(tx::Transaction* txn,
                                  tx::TableHandle* handle, const Plan& plan);
  Result<ResultSet> ExecuteUpdate(tx::Transaction* txn,
                                  tx::TableHandle* handle, const Plan& plan);
  Result<ResultSet> ExecuteDelete(tx::Transaction* txn,
                                  tx::TableHandle* handle, const Plan& plan);

  const bool pushdown_;
};

}  // namespace tell::sql

#endif  // TELL_SQL_EXECUTOR_H_
